"""Scalar expressions, predicates and aggregate expressions.

Predicates are the only scalar language the optimizer needs: selections and
join conditions are conjunctions of simple comparisons (column vs literal or
column vs column), ranges, IN-lists and disjunctions.  Everything is a
frozen, hashable dataclass so predicates can be used inside the semantic
fingerprints that identify equivalence nodes (see
:mod:`repro.dag.fingerprint`).

The module also provides the predicate reasoning used by the subsumption
rules: :func:`implies` decides entailment between simple single-column
predicates, and :func:`disjunction` builds the relaxed "union" predicate
``p1 ∨ p2`` that Roy et al. introduce to let two queries with different
selection constants share a common subexpression.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple, Union

__all__ = [
    "ColumnRef",
    "Literal",
    "Operand",
    "ComparisonOp",
    "Predicate",
    "Comparison",
    "Between",
    "InList",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "AggregateFunction",
    "AggregateExpr",
    "col",
    "lit",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "between",
    "in_list",
    "conjunction",
    "conjuncts",
    "disjunction",
    "referenced_columns",
    "referenced_qualifiers",
    "is_join_predicate",
    "is_equijoin_predicate",
    "single_column",
    "implies",
]


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A reference to a column, optionally qualified by a source alias.

    TPC-D column names are globally unique, so the qualifier is usually
    redundant; it matters for self-joins (e.g. the two ``nation`` instances
    in Q7) where ``n1.n_name`` and ``n2.n_name`` are different attributes.
    """

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def with_qualifier(self, qualifier: Optional[str]) -> "ColumnRef":
        return ColumnRef(self.name, qualifier)


@dataclass(frozen=True)
class Literal:
    """A constant value (int, float or string; dates are YYYYMMDD ints)."""

    value: Union[int, float, str]

    def __str__(self) -> str:
        return repr(self.value)

    @property
    def numeric(self) -> Optional[float]:
        if isinstance(self.value, bool):
            return None
        if isinstance(self.value, (int, float)):
            return float(self.value)
        return None


Operand = Union[ColumnRef, Literal]


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class ComparisonOp(str, Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flip(self) -> "ComparisonOp":
        """The operator obtained by swapping the comparison's operands."""
        return {
            ComparisonOp.EQ: ComparisonOp.EQ,
            ComparisonOp.NE: ComparisonOp.NE,
            ComparisonOp.LT: ComparisonOp.GT,
            ComparisonOp.LE: ComparisonOp.GE,
            ComparisonOp.GT: ComparisonOp.LT,
            ComparisonOp.GE: ComparisonOp.LE,
        }[self]


class Predicate:
    """Base class for boolean predicates (all subclasses are frozen dataclasses)."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return conjunction([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return disjunction([self, other])


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate (the identity of conjunction)."""

    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left OP right`` with ``left`` a column and ``right`` a column or literal."""

    left: ColumnRef
    op: ComparisonOp
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class Between(Predicate):
    """``column BETWEEN low AND high`` (inclusive bounds)."""

    column: ColumnRef
    low: Literal
    high: Literal

    def __str__(self) -> str:
        return f"{self.column} BETWEEN {self.low} AND {self.high}"


@dataclass(frozen=True)
class InList(Predicate):
    """``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: Tuple[Literal, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(v) for v in self.values)
        return f"{self.column} IN ({inner})"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of two or more predicates."""

    operands: Tuple[Predicate, ...]

    def __str__(self) -> str:
        return "(" + " AND ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two or more predicates."""

    operands: Tuple[Predicate, ...]

    def __str__(self) -> str:
        return "(" + " OR ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


class AggregateFunction(str, Enum):
    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class AggregateExpr:
    """An aggregate such as ``sum(l_extendedprice) AS revenue``.

    ``column=None`` means ``count(*)``.
    """

    func: AggregateFunction
    column: Optional[ColumnRef]
    alias: str

    def __str__(self) -> str:
        target = str(self.column) if self.column is not None else "*"
        return f"{self.func.value}({target}) AS {self.alias}"


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def col(name: str, qualifier: Optional[str] = None) -> ColumnRef:
    """Build a column reference; ``col("n1.n_name")`` parses the qualifier."""
    if qualifier is None and "." in name:
        qualifier, name = name.split(".", 1)
    return ColumnRef(name, qualifier)


def lit(value: Union[int, float, str]) -> Literal:
    return Literal(value)


def _operand(value: Union[ColumnRef, Literal, int, float, str]) -> Operand:
    if isinstance(value, (ColumnRef, Literal)):
        return value
    return Literal(value)


def _comparison(left: Union[ColumnRef, str], op: ComparisonOp, right) -> Comparison:
    left_ref = col(left) if isinstance(left, str) else left
    return Comparison(left_ref, op, _operand(right))


def eq(left, right) -> Comparison:
    return _comparison(left, ComparisonOp.EQ, right)


def ne(left, right) -> Comparison:
    return _comparison(left, ComparisonOp.NE, right)


def lt(left, right) -> Comparison:
    return _comparison(left, ComparisonOp.LT, right)


def le(left, right) -> Comparison:
    return _comparison(left, ComparisonOp.LE, right)


def gt(left, right) -> Comparison:
    return _comparison(left, ComparisonOp.GT, right)


def ge(left, right) -> Comparison:
    return _comparison(left, ComparisonOp.GE, right)


def between(column: Union[ColumnRef, str], low, high) -> Between:
    column_ref = col(column) if isinstance(column, str) else column
    return Between(column_ref, Literal(low) if not isinstance(low, Literal) else low,
                   Literal(high) if not isinstance(high, Literal) else high)


def in_list(column: Union[ColumnRef, str], values: Iterable) -> InList:
    column_ref = col(column) if isinstance(column, str) else column
    literals = tuple(v if isinstance(v, Literal) else Literal(v) for v in values)
    return InList(column_ref, literals)


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def conjuncts(predicate: Optional[Predicate]) -> Tuple[Predicate, ...]:
    """Flatten a predicate into its top-level conjuncts (drops TRUE)."""
    if predicate is None or isinstance(predicate, TruePredicate):
        return ()
    if isinstance(predicate, And):
        result: Tuple[Predicate, ...] = ()
        for operand in predicate.operands:
            result += conjuncts(operand)
        return result
    return (predicate,)


def conjunction(predicates: Iterable[Predicate]) -> Predicate:
    """Combine predicates with AND (returns TRUE for an empty collection)."""
    flat: Tuple[Predicate, ...] = ()
    for predicate in predicates:
        flat += conjuncts(predicate)
    if not flat:
        return TruePredicate()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjunction(predicates: Sequence[Predicate]) -> Predicate:
    """Combine predicates with OR (flattening nested ORs, deduplicating)."""
    flat: list = []
    for predicate in predicates:
        if isinstance(predicate, Or):
            flat.extend(predicate.operands)
        else:
            flat.append(predicate)
    unique: list = []
    for predicate in flat:
        if predicate not in unique:
            unique.append(predicate)
    if not unique:
        return TruePredicate()
    if len(unique) == 1:
        return unique[0]
    return Or(tuple(unique))


def referenced_columns(predicate: Predicate) -> FrozenSet[ColumnRef]:
    """All column references appearing anywhere in the predicate."""
    if isinstance(predicate, (TruePredicate,)):
        return frozenset()
    if isinstance(predicate, Comparison):
        columns = {predicate.left}
        if isinstance(predicate.right, ColumnRef):
            columns.add(predicate.right)
        return frozenset(columns)
    if isinstance(predicate, Between):
        return frozenset({predicate.column})
    if isinstance(predicate, InList):
        return frozenset({predicate.column})
    if isinstance(predicate, (And, Or)):
        result: FrozenSet[ColumnRef] = frozenset()
        for operand in predicate.operands:
            result |= referenced_columns(operand)
        return result
    if isinstance(predicate, Not):
        return referenced_columns(predicate.operand)
    raise TypeError(f"unknown predicate type: {type(predicate).__name__}")


def referenced_qualifiers(predicate: Predicate) -> FrozenSet[str]:
    """All source aliases referenced by the predicate (ignores unqualified refs)."""
    return frozenset(
        c.qualifier for c in referenced_columns(predicate) if c.qualifier is not None
    )


def is_join_predicate(predicate: Predicate) -> bool:
    """True for column-to-column comparisons (candidate join conditions)."""
    return isinstance(predicate, Comparison) and isinstance(predicate.right, ColumnRef)


def is_equijoin_predicate(predicate: Predicate) -> bool:
    return is_join_predicate(predicate) and predicate.op is ComparisonOp.EQ


def single_column(predicate: Predicate) -> Optional[ColumnRef]:
    """The unique column a single-table predicate constrains, if any."""
    columns = referenced_columns(predicate)
    if len(columns) == 1:
        return next(iter(columns))
    return None


# ---------------------------------------------------------------------------
# Entailment (used by the subsumption rules)
# ---------------------------------------------------------------------------


def _as_interval(predicate: Predicate) -> Optional[Tuple[ColumnRef, float, float, bool, bool]]:
    """Represent a numeric single-column predicate as a closed/open interval.

    Returns ``(column, low, high, low_inclusive, high_inclusive)`` or ``None``
    if the predicate is not an interval constraint on a single column.
    """
    inf = float("inf")
    if isinstance(predicate, Comparison) and isinstance(predicate.right, Literal):
        value = predicate.right.numeric
        if value is None:
            return None
        if predicate.op is ComparisonOp.EQ:
            return (predicate.left, value, value, True, True)
        if predicate.op is ComparisonOp.LT:
            return (predicate.left, -inf, value, True, False)
        if predicate.op is ComparisonOp.LE:
            return (predicate.left, -inf, value, True, True)
        if predicate.op is ComparisonOp.GT:
            return (predicate.left, value, inf, False, True)
        if predicate.op is ComparisonOp.GE:
            return (predicate.left, value, inf, True, True)
        return None
    if isinstance(predicate, Between):
        low = predicate.low.numeric
        high = predicate.high.numeric
        if low is None or high is None:
            return None
        return (predicate.column, low, high, True, True)
    return None


def implies(stronger: Predicate, weaker: Predicate) -> bool:
    """Decide whether ``stronger ⊨ weaker`` for simple single-column predicates.

    The check is sound but deliberately incomplete: it only recognises
    interval containment on the same column (and trivial cases involving
    TRUE / identical predicates / OR-weakening), which is all the
    subsumption rules need.
    """
    if isinstance(weaker, TruePredicate):
        return True
    if stronger == weaker:
        return True
    if isinstance(weaker, Or) and any(implies(stronger, o) for o in weaker.operands):
        return True
    strong = _as_interval(stronger)
    weak = _as_interval(weaker)
    if strong is None or weak is None:
        return False
    s_col, s_lo, s_hi, s_lo_inc, s_hi_inc = strong
    w_col, w_lo, w_hi, w_lo_inc, w_hi_inc = weak
    if s_col != w_col:
        return False
    lower_ok = s_lo > w_lo or (s_lo == w_lo and (w_lo_inc or not s_lo_inc))
    upper_ok = s_hi < w_hi or (s_hi == w_hi and (w_hi_inc or not s_hi_inc))
    return lower_ok and upper_ok
