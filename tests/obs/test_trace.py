"""Tracer: span nesting, sampling, propagation, sinks, the null twin."""

import json
import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    InMemorySink,
    JsonlTraceWriter,
    NullTracer,
    Tracer,
)
from repro.obs.trace import _NULL_SPAN


def test_nested_spans_share_trace_and_chain_parents():
    tracer = Tracer()
    with tracer.span("outer", batch="b") as outer:
        with tracer.span("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
            assert tracer.current_trace_id() == outer.trace_id
    assert tracer.current_trace_id() is None
    records = tracer.sink.records
    # Children pop (and record) before their parents.
    assert [r["name"] for r in records] == ["inner", "outer"]
    assert records[1]["attrs"] == {"batch": "b"}
    assert "parent" not in records[1] and records[0]["parent"] == records[1]["span"]
    assert all(r["dur"] >= 0 for r in records)


def test_span_set_and_events_land_in_the_record():
    tracer = Tracer()
    with tracer.span("op") as span:
        span.set(rows=3)
        tracer.event("cache_hit", key="k1")  # routed to the open span
        span.event("direct", n=1)
    record = tracer.sink.records[0]
    assert record["attrs"] == {"rows": 3}
    names = [e["name"] for e in record["events"]]
    assert names == ["cache_hit", "direct"]
    assert record["events"][0]["attrs"] == {"key": "k1"}
    assert all(e["dt"] >= 0 for e in record["events"])


def test_exception_marks_span_and_propagates():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("op"):
            raise ValueError("boom")
    record = tracer.sink.records[0]
    assert record["attrs"]["error"] == "ValueError"


def test_zero_sample_rate_propagates_context_but_records_nothing():
    tracer = Tracer(sample=0.0)
    with tracer.span("outer") as outer:
        assert outer.trace_id is not None  # context still flows
        with tracer.span("inner"):
            tracer.event("hit")
    assert tracer.sink.records == []


def test_sample_rate_validation():
    with pytest.raises(ValueError):
        Tracer(sample=1.5)


def test_activate_reenters_a_foreign_trace():
    tracer = Tracer()
    trace_id = tracer.new_trace_id()
    with tracer.activate(trace_id):
        assert tracer.current_trace_id() == trace_id
        with tracer.span("work") as span:
            assert span.trace_id == trace_id
    assert tracer.sink.spans("work")[0]["trace"] == trace_id


def test_cross_thread_propagation_via_activate():
    tracer = Tracer()
    trace_id = tracer.new_trace_id()

    def worker():
        with tracer.activate(trace_id):
            with tracer.span("on_worker"):
                pass

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    with tracer.span("on_main"):
        pass
    spans = {r["name"]: r for r in tracer.sink.records}
    assert spans["on_worker"]["trace"] == trace_id
    assert spans["on_main"]["trace"] != trace_id  # threads don't leak stacks


def test_record_span_files_under_current_or_explicit_trace():
    tracer = Tracer()
    with tracer.span("parent") as parent:
        tracer.record_span("measured", 0.25, rows=7)
    foreign = tracer.new_trace_id()
    tracer.record_span("linked", 0.5, trace_id=foreign)
    measured = tracer.sink.spans("measured")[0]
    assert measured["trace"] == parent.trace_id
    assert measured["parent"] == parent.span_id
    assert measured["dur"] == 0.25 and measured["attrs"] == {"rows": 7}
    assert tracer.sink.spans("linked")[0]["trace"] == foreign


def test_record_span_respects_unsampled_context():
    tracer = Tracer(sample=0.0)
    with tracer.span("parent"):
        tracer.record_span("measured", 0.1)
    assert tracer.sink.records == []


def test_in_memory_sink_filters_by_name():
    sink = InMemorySink()
    tracer = Tracer(sink)
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    assert [r["name"] for r in sink.spans("a")] == ["a"]
    assert len(sink.spans()) == 2


def test_jsonl_writer_creates_per_pid_file_in_directory(tmp_path):
    writer = JsonlTraceWriter(tmp_path)
    assert writer.path.parent == tmp_path
    assert writer.path.name.startswith("trace-") and writer.path.suffix == ".jsonl"
    tracer = Tracer(writer)
    with tracer.span("op", batch="b"):
        pass
    tracer.close()
    lines = writer.path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert record["name"] == "op" and record["kind"] == "span"


def test_jsonl_writer_accepts_explicit_file_and_reprs_unserializable(tmp_path):
    target = tmp_path / "sub" / "run.jsonl"
    writer = JsonlTraceWriter(target)
    assert writer.path == target
    tracer = Tracer(writer)
    with tracer.span("op", obj=object()):  # not JSON-serializable
        pass
    tracer.close()
    record = json.loads(target.read_text(encoding="utf-8"))
    assert record["attrs"]["obj"].startswith("<object object")


def test_null_tracer_is_a_shared_true_noop():
    assert isinstance(NULL_TRACER, NullTracer)
    assert NULL_TRACER.enabled is False
    span = NULL_TRACER.span("anything", cost=1)
    assert span is _NULL_SPAN and NULL_TRACER.activate("t") is _NULL_SPAN
    with span as entered:
        entered.set(rows=1)
        entered.event("hit")
        assert entered.sampled is False
    assert NULL_TRACER.new_trace_id() is None
    assert NULL_TRACER.current_trace_id() is None
    NULL_TRACER.event("hit")
    NULL_TRACER.record_span("x", 0.1)
    NULL_TRACER.flush()
    NULL_TRACER.close()
