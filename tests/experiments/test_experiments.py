"""Tests for the experiment harness (reduced configurations).

These run the same code paths as the full figure benchmarks but on small
configurations so the unit-test suite stays fast.
"""

import pytest

from repro.experiments.example1 import run_example1
from repro.experiments.experiment1 import run_experiment1
from repro.experiments.experiment2 import run_experiment2
from repro.experiments.reporting import (
    ResultTable,
    format_seconds,
    session_counters_table,
)
from repro.experiments.theory import run_theory_experiment


class TestReporting:
    def test_table_rendering(self):
        table = ResultTable("Demo", ["name", "value"])
        table.add_row("a", 1.5)
        table.add_row("b", None)
        text = table.to_text()
        assert "Demo" in text and "a" in text
        markdown = table.to_markdown()
        assert markdown.count("|") > 4
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "name,value"

    def test_row_arity_checked(self):
        table = ResultTable("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_seconds(self):
        assert format_seconds(123.4) == "123"
        assert format_seconds(12.34) == "12.3"
        assert format_seconds(0.1234) == "0.123"

    def test_session_counters_table_surfaces_feedback_counters(self):
        from repro.service import OptimizerSession
        from repro.workloads.synthetic import example1_catalog

        plain = OptimizerSession(example1_catalog())
        table = session_counters_table(plain)
        counters = {row[0] for row in table.rows}
        assert "batches_served" in counters and "reoptimizations" in counters
        assert "matcache_hits" in counters
        assert not any(name.startswith("feedback_") for name in counters)

        adaptive = OptimizerSession(example1_catalog(), adaptive=True)
        counters = {row[0] for row in session_counters_table(adaptive).rows}
        assert "feedback_records" in counters
        assert "feedback_tracked_nodes" in counters
        assert "feedback_epoch" in counters


class TestExample1:
    def test_sharing_wins_and_uses_b_join_c(self):
        outcome = run_example1()
        assert outcome.sharing_wins
        assert outcome.shares_b_join_c
        table = outcome.table()
        assert len(table.rows) == 2


class TestExperiment1:
    @pytest.fixture(scope="class")
    def results(self):
        return run_experiment1(scale_factors=(1.0,), max_batches=1)

    def test_rows_cover_all_strategies(self, results):
        strategies = {row.strategy for row in results.rows}
        assert strategies == {"volcano", "greedy", "marginal-greedy"}

    def test_mqo_never_worse_than_volcano(self, results):
        volcano = {r.batch: r.estimated_cost_s for r in results.rows if r.strategy == "volcano"}
        for row in results.rows:
            assert row.estimated_cost_s <= volcano[row.batch] + 1e-6

    def test_figure_tables(self, results):
        fig4a = results.figure_4a()
        assert "BQ1" in [row[0] for row in fig4a.rows]
        fig4c = results.figure_4c()
        assert len(fig4c.rows) == 1

    def test_improvement_property(self, results):
        for row in results.rows:
            assert 0.0 <= row.improvement < 1.0


class TestExperiment2:
    @pytest.fixture(scope="class")
    def results(self):
        return run_experiment2(scale_factors=(1.0,), workloads=("Q11", "Q15"))

    def test_workload_selection(self, results):
        assert {r.workload for r in results.rows} == {"Q11", "Q15"}

    def test_sharing_found_for_q15(self, results):
        q15_rows = [r for r in results.rows if r.workload == "Q15" and r.strategy != "volcano"]
        assert any(r.materialized_nodes >= 1 for r in q15_rows)
        assert all(r.improvement >= 0 for r in q15_rows)

    def test_tables(self, results):
        assert results.figure_5a().rows
        assert results.figure_5c().rows

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            run_experiment2(scale_factors=(1.0,), workloads=("QX",))


class TestTheory:
    def test_bounds_hold(self):
        results = run_theory_experiment(n_random_instances=4, n_perfect_instances=2)
        assert results.all_bounds_satisfied
        assert 0.5 <= results.mean_achieved_ratio <= 1.0 + 1e-9
        table = results.table()
        assert len(table.rows) == 6
