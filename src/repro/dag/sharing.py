"""The combined batch DAG: query roots, shareable nodes and ancestry.

After the :class:`~repro.dag.build.DagBuilder` has folded every query of a
batch into the shared memo, the :class:`BatchDag` is the object the MQO
layer works with.  Conceptually it is the rooted DAG of Roy et al. — a dummy
operator node whose inputs are the root equivalence nodes of all the
queries — and it answers the two structural questions the algorithms need:

* which equivalence nodes are *shareable* (can appear more than once in a
  single consolidated plan, so materializing them can pay off), and
* which nodes are ancestors of a given node (used by the incremental
  best-cost engine to invalidate only the affected part of the plan DP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..algebra.logical import QueryBatch
from ..catalog.catalog import Catalog
from .build import DagBuilder, DagConfig
from .fingerprint import RelationSignature
from .memo import Memo, MExpr, mexpr_children

__all__ = ["MaterializationChoice", "BatchDag", "build_batch_dag"]


@dataclass(frozen=True)
class MaterializationChoice:
    """A candidate materialization: an equivalence node plus a stored sort order.

    This is the PQDAG-level view of the search space: the same logical
    result can be materialized unsorted (cheapest to produce) or sorted on
    an order its consumers ask for (cheapest to reuse).  The greedy
    algorithms choose between the variants purely by cost.
    """

    group: int
    order: "SortOrder" = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.order is None:
            from ..algebra.properties import SortOrder

            object.__setattr__(self, "order", SortOrder())

    def describe(self) -> str:
        suffix = f" stored sorted by {self.order}" if self.order else ""
        return f"G{self.group}{suffix}"


@dataclass
class BatchDag:
    """The combined AND-OR DAG of a query batch plus derived structure.

    The memo behind a :class:`BatchDag` may be *shared* with other batches
    (the persistent :class:`~repro.service.session.OptimizerSession` folds
    every batch it serves into one memo).  The dag therefore scopes all of
    its structural queries — and the plan DP of the
    :class:`~repro.optimizer.volcano.VolcanoOptimizer` — to the *active*
    part of the memo: the groups reachable from this batch's roots, where a
    subsumption derivation only counts as an edge when both groups of one
    of its inducing pairs belong to this batch (see
    :meth:`~repro.dag.memo.Memo.add_derivation`).  For a memo built for a
    single batch the scope is the whole memo, so one-shot behaviour is
    unchanged; for a shared memo it makes every batch optimize exactly as
    if its DAG had been built fresh.
    """

    memo: Memo
    catalog: Catalog
    query_roots: Dict[str, int]
    block_roots: Tuple[int, ...]
    config: DagConfig = field(default_factory=DagConfig)
    _parents: Optional[Dict[int, FrozenSet[int]]] = field(default=None, repr=False)
    _ancestors: Dict[int, FrozenSet[int]] = field(default_factory=dict, repr=False)
    _shareable: Optional[Tuple[int, ...]] = field(default=None, repr=False)
    _structural: Optional[FrozenSet[int]] = field(default=None, repr=False)
    _scoped: Optional[FrozenSet[int]] = field(default=None, repr=False)
    _active_mexprs: Dict[int, Tuple[MExpr, ...]] = field(default_factory=dict, repr=False)

    # -- batch scope ---------------------------------------------------------

    @property
    def roots(self) -> Tuple[int, ...]:
        """The root groups of the batch's queries (inputs of the dummy root)."""
        return tuple(self.query_roots.values())

    def structural_groups(self) -> FrozenSet[int]:
        """Groups reachable from this batch's roots through structural edges only.

        Subsumption derivations are not followed; the result is the set of
        groups the batch's own queries would create in a fresh memo, which
        is what derivation activity is decided against.
        """
        if self._structural is None:
            memo = self.memo
            seen: Set[int] = set()
            stack: List[int] = list(self.block_roots) + list(self.query_roots.values())
            while stack:
                gid = stack.pop()
                if gid in seen:
                    continue
                seen.add(gid)
                for mexpr in memo.get(gid).mexprs:
                    if memo.is_derivation(gid, mexpr):
                        continue
                    for child in mexpr_children(mexpr):
                        if child not in seen:
                            stack.append(child)
            self._structural = frozenset(seen)
        return self._structural

    def iter_mexprs(self, group_id: int) -> Tuple[MExpr, ...]:
        """The multi-expressions of a group that are active for this batch.

        Structural expressions are always active; a subsumption derivation is
        active when at least one of its inducing pairs lies entirely inside
        this batch's structural groups.
        """
        cached = self._active_mexprs.get(group_id)
        if cached is not None:
            return cached
        memo = self.memo
        group = memo.get(group_id)
        structural = self.structural_groups()
        active: List[MExpr] = []
        for mexpr in group.mexprs:
            pairs = memo.derivation_pairs(group_id, mexpr)
            if not pairs or any(pair <= structural for pair in pairs):
                active.append(mexpr)
        result = tuple(active)
        self._active_mexprs[group_id] = result
        return result

    def scoped_reachable(self, roots: "int | Tuple[int, ...] | List[int]") -> FrozenSet[int]:
        """Groups reachable from ``roots`` through this batch's active edges."""
        if isinstance(roots, int):
            roots = (roots,)
        seen: Set[int] = set()
        stack = list(roots)
        while stack:
            gid = stack.pop()
            if gid in seen:
                continue
            seen.add(gid)
            for mexpr in self.iter_mexprs(gid):
                for child in mexpr_children(mexpr):
                    if child not in seen:
                        stack.append(child)
        return frozenset(seen)

    def scoped_groups(self) -> FrozenSet[int]:
        """All groups this batch's plan DP can visit (structural + active derivations)."""
        if self._scoped is None:
            self._scoped = self.scoped_reachable(
                tuple(self.block_roots) + tuple(self.query_roots.values())
            )
        return self._scoped

    def parents(self) -> Dict[int, FrozenSet[int]]:
        if self._parents is None:
            self._parents = self.memo.parents()
        return self._parents

    def ancestors(self, group_id: int) -> FrozenSet[int]:
        """All groups from which ``group_id`` is reachable (excluding itself)."""
        cached = self._ancestors.get(group_id)
        if cached is not None:
            return cached
        parents = self.parents()
        seen: Set[int] = set()
        stack: List[int] = list(parents.get(group_id, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(parents.get(current, ()))
        result = frozenset(seen)
        self._ancestors[group_id] = result
        return result

    def shareable_nodes(self) -> Tuple[int, ...]:
        """Equivalence nodes worth considering for materialization.

        A node is shareable when it is reachable from at least two different
        blocks of the batch (two different queries, or two different blocks
        of the same query, e.g. an outer query and its decorrelated
        sub-query) — those are exactly the nodes that can have two
        simultaneous consumers in one consolidated plan.  Base-relation scan
        nodes are excluded: re-reading a stored relation is never cheaper
        than the relation itself.
        """
        if self._shareable is not None:
            return self._shareable
        tag_count: Dict[int, int] = {}
        for root in self.block_roots:
            for gid in self.scoped_reachable(root):
                tag_count[gid] = tag_count.get(gid, 0) + 1
        shareable = []
        for gid, count in tag_count.items():
            if count < 2:
                continue
            if isinstance(self.memo.get(gid).signature, RelationSignature):
                continue
            shareable.append(gid)
        self._shareable = tuple(sorted(shareable))
        return self._shareable

    def interesting_orders(self) -> Dict[int, Tuple["SortOrder", ...]]:
        """Sort orders that some consumer of each group may request.

        Join implementations request their equi-join keys from their
        operands, sort-based aggregation requests its grouping keys, and
        selections pass their own requirements down to their inputs.  The
        result is used to decide which physical property a materialized node
        should be stored with (the PQDAG-level physical property handling of
        Roy et al., reduced to sort orders).
        """
        from ..algebra.expressions import ColumnRef, Comparison, ComparisonOp, conjuncts
        from ..algebra.properties import SortOrder
        from .memo import AggregateMExpr, JoinMExpr, SelectMExpr

        scoped = sorted(self.scoped_groups())
        requested: Dict[int, List[SortOrder]] = {gid: [] for gid in scoped}

        def equijoin_keys(mexpr: JoinMExpr):
            left_keys, right_keys = [], []
            if mexpr.predicate is None:
                return left_keys, right_keys
            for predicate in conjuncts(mexpr.predicate):
                if (
                    isinstance(predicate, Comparison)
                    and predicate.op is ComparisonOp.EQ
                    and isinstance(predicate.right, ColumnRef)
                ):
                    a, b = predicate.left, predicate.right
                    if a.qualifier in mexpr.left_aliases and b.qualifier in mexpr.right_aliases:
                        left_keys.append(a)
                        right_keys.append(b)
                    elif a.qualifier in mexpr.right_aliases and b.qualifier in mexpr.left_aliases:
                        left_keys.append(b)
                        right_keys.append(a)
            return left_keys, right_keys

        # Direct requests from joins and aggregations.
        for gid in scoped:
            for mexpr in self.iter_mexprs(gid):
                if isinstance(mexpr, JoinMExpr):
                    left_keys, right_keys = equijoin_keys(mexpr)
                    if left_keys:
                        requested[mexpr.left].append(SortOrder(tuple(left_keys)))
                        requested[mexpr.right].append(SortOrder(tuple(right_keys)))
                elif isinstance(mexpr, AggregateMExpr) and mexpr.group_by:
                    requested[mexpr.child].append(SortOrder(tuple(mexpr.group_by)))

        # Selections propagate their own requirements to their child, so
        # iterate to a fixpoint (the DAG is acyclic; depth bounds the passes).
        for _ in range(32):
            changed = False
            for gid in scoped:
                for mexpr in self.iter_mexprs(gid):
                    if isinstance(mexpr, SelectMExpr):
                        for order in requested[gid]:
                            if order not in requested[mexpr.child]:
                                requested[mexpr.child].append(order)
                                changed = True
            if not changed:
                break

        return {gid: tuple(orders) for gid, orders in requested.items()}

    def shareable_candidates(self, max_orders_per_node: int = 2) -> Tuple[MaterializationChoice, ...]:
        """Materialization candidates: every shareable node, unsorted and sorted.

        For each shareable equivalence node the unsorted variant is always a
        candidate; additionally the ``max_orders_per_node`` most frequently
        requested interesting orders are offered as sorted variants, which
        lets the greedy algorithms trade a one-off sort during
        materialization against per-consumer sorts.
        """
        from collections import Counter

        interesting = self.interesting_orders()
        candidates: List[MaterializationChoice] = []
        for gid in self.shareable_nodes():
            candidates.append(MaterializationChoice(gid))
            counts = Counter(interesting.get(gid, ()))
            ranked = sorted(counts.items(), key=lambda item: (-item[1], str(item[0])))
            for order, _ in ranked[:max_orders_per_node]:
                if order:
                    candidates.append(MaterializationChoice(gid, order))
        return tuple(candidates)

    def describe_candidate(self, candidate: "MaterializationChoice | int") -> str:
        if isinstance(candidate, MaterializationChoice):
            base = self.describe_group(candidate.group)
            if candidate.order:
                return f"{base} [stored sorted by {candidate.order}]"
            return base
        return self.describe_group(candidate)

    def preferred_orders(self) -> Dict[int, "SortOrder"]:
        """The sort order each group would be materialized with.

        The most frequently requested interesting order wins (ties broken
        deterministically); groups nobody wants sorted are stored unsorted.
        """
        from collections import Counter

        from ..algebra.properties import SortOrder

        if getattr(self, "_preferred_orders", None) is None:
            preferred: Dict[int, SortOrder] = {}
            for gid, orders in self.interesting_orders().items():
                if not orders:
                    preferred[gid] = SortOrder()
                    continue
                counts = Counter(orders)
                best = sorted(counts.items(), key=lambda item: (-item[1], str(item[0])))[0][0]
                preferred[gid] = best
            self._preferred_orders = preferred
        return self._preferred_orders

    # -- reporting ------------------------------------------------------------

    def describe_group(self, group_id: int) -> str:
        return self.memo.get(group_id).describe()

    def summary(self) -> Dict[str, int]:
        """Size statistics of this batch's scope of the (possibly shared) memo."""
        scoped = self.scoped_groups()
        stats = {
            "groups": len(scoped),
            "mexprs": sum(len(self.iter_mexprs(gid)) for gid in scoped),
            "relations": sum(
                1 for gid in scoped if self.memo.get(gid).is_relation
            ),
        }
        stats["queries"] = len(self.query_roots)
        stats["blocks"] = len(self.block_roots)
        stats["shareable"] = len(self.shareable_nodes())
        return stats


def build_batch_dag(
    batch: QueryBatch,
    catalog: Catalog,
    config: Optional[DagConfig] = None,
) -> BatchDag:
    """Build the combined DAG for a batch (normalize, expand, apply subsumption)."""
    builder = DagBuilder(catalog, config)
    builder.add_batch(batch)
    builder.finalize()
    return BatchDag(
        memo=builder.memo,
        catalog=catalog,
        query_roots=dict(builder.query_roots),
        block_roots=tuple(builder.block_roots),
        config=builder.config,
    )
