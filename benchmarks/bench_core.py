"""Micro-benchmarks of the algorithmic core (independent of the optimizer)."""

import pytest

from repro.core.coverage import CoverageFunction, ProfittedMaxCoverage, random_instance
from repro.core.decomposition import canonical_decomposition
from repro.core.greedy import greedy, lazy_greedy
from repro.core.marginal_greedy import lazy_marginal_greedy, marginal_greedy
from repro.core.set_functions import LambdaSetFunction


def _large_problem(seed: int = 0):
    instance = random_instance(n_elements=120, n_subsets=40, budget=8, seed=seed)
    return ProfittedMaxCoverage(instance, gamma=3.0)


@pytest.mark.benchmark(group="core-marginal-greedy")
def test_marginal_greedy_speed(benchmark):
    decomposition = _large_problem().decomposition()
    result = benchmark(lambda: marginal_greedy(decomposition))
    assert result.value >= 0


@pytest.mark.benchmark(group="core-marginal-greedy")
def test_lazy_marginal_greedy_speed(benchmark):
    decomposition = _large_problem().decomposition()
    result = benchmark(lambda: lazy_marginal_greedy(decomposition))
    assert result.value >= 0


@pytest.mark.benchmark(group="core-greedy")
def test_lazy_greedy_speed_on_cost_oracle(benchmark):
    problem = _large_problem(seed=5)
    coverage = CoverageFunction(problem.instance)
    base = 1000.0
    oracle = LambdaSetFunction(
        coverage.universe, lambda s: base - 5.0 * coverage.value(s) + 2.0 * len(s)
    )
    result = benchmark(lambda: lazy_greedy(oracle))
    assert result.final_cost <= result.initial_cost


@pytest.mark.benchmark(group="core-decomposition")
def test_canonical_decomposition_speed(benchmark):
    decomposition = _large_problem(seed=9).decomposition()
    result = benchmark(lambda: canonical_decomposition(decomposition.original))
    assert len(result.cost.weights) == len(decomposition.universe)
