"""Must-flag fixture for ``stats-snapshot``.

The pre-PR 8 aggregation shapes: multi-field reads off a live statistics
view without the owner's lock.  Never imported.
"""


def report(session):
    # as_dict() copies every field one by one off the live view.
    return session.statistics.as_dict()


def aggregate(shards):
    # The getattr-loop shape that tore in the pool before PR 8.
    totals = {}
    for shard in shards:
        for name in ("hits", "misses"):
            totals[name] = totals.get(name, 0) + getattr(shard.statistics, name)
    return totals


def ratio(cache):
    # Two distinct fields of the same live view read in one function.
    return cache.statistics.hits / (cache.statistics.misses + 1)
