"""The ``bestCost`` oracle with caching and incremental re-optimization.

Section 5.1 of the paper recalls the incremental cost-update optimization of
Roy et al.: when the greedy loop evaluates ``bestCost(X ∪ {x})`` after
having evaluated ``bestCost(X)``, only the plan-DP entries of ``x`` and its
ancestors in the DAG can change.  :class:`BestCostEngine` implements exactly
that: it keeps the DP tables of recently evaluated materialization sets and,
for a new set ``S``, extends the table of the best cached subset of ``S`` by
invalidating only the affected ancestor cone.

The engine is deliberately oblivious to which algorithm drives it — the
Greedy and MarginalGreedy loops simply call it through a
:class:`~repro.core.set_functions.SetFunction` adapter — so the lazy and
non-lazy variants benefit equally, mirroring the paper's setup.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..algebra.properties import ANY_ORDER
from ..cost.model import CostModel
from ..dag.sharing import BatchDag, MaterializationChoice
from .volcano import BestCostResult, PlanCache, VolcanoOptimizer, normalize_materialized

__all__ = ["BestCostEngine", "EngineStatistics"]


def _candidate_group(element) -> int:
    """The group id affected by a materialization candidate."""
    if isinstance(element, MaterializationChoice):
        return element.group
    return int(element)


@dataclass
class EngineStatistics:
    """Counters describing how the engine answered its queries."""

    evaluations: int = 0
    result_cache_hits: int = 0
    incremental_evaluations: int = 0
    full_evaluations: int = 0
    invalidated_entries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "evaluations": self.evaluations,
            "result_cache_hits": self.result_cache_hits,
            "incremental_evaluations": self.incremental_evaluations,
            "full_evaluations": self.full_evaluations,
            "invalidated_entries": self.invalidated_entries,
        }


class BestCostEngine:
    """Evaluate ``bestCost(Q, S)`` with result caching and incremental DP reuse.

    Args:
        dag: the combined batch DAG.
        cost_model: the cost model (defaults to the paper's parameters).
        incremental: enable the ancestor-cone incremental re-optimization.
        max_cached_states: how many materialization sets keep their full DP
            table around for incremental extension.
        max_cached_results: how many ``BestCostResult`` objects to memoize.
    """

    def __init__(
        self,
        dag: BatchDag,
        cost_model: Optional[CostModel] = None,
        *,
        incremental: bool = True,
        max_cached_states: int = 8,
        max_cached_results: int = 256,
    ):
        self.dag = dag
        self.optimizer = VolcanoOptimizer(dag, cost_model)
        self.incremental = incremental
        self.max_cached_states = max_cached_states
        self.max_cached_results = max_cached_results
        self.statistics = EngineStatistics()
        # The engine's DP entries are keyed (group id, sort order) and remain
        # valid even when a shared memo grows after engine creation: group
        # ids are append-only, the plan DP only explores this batch's active
        # scope, and that scope is frozen once the batch's queries and the
        # subsumption pass over them are in the memo (later batches can only
        # add groups/derivations outside it).  This is what lets a persistent
        # OptimizerSession keep engines — and their caches — alive across
        # arbitrarily many batches with no invalidation protocol.
        self._states: "OrderedDict[FrozenSet[int], PlanCache]" = OrderedDict()
        self._results: "OrderedDict[FrozenSet[int], BestCostResult]" = OrderedDict()

    # ------------------------------------------------------------------ API

    def evaluate(self, materialized: Iterable) -> BestCostResult:
        """Return the full :class:`BestCostResult` for a materialization set."""
        key = frozenset(materialized)
        self.statistics.evaluations += 1
        cached = self._results.get(key)
        if cached is not None:
            self.statistics.result_cache_hits += 1
            self._results.move_to_end(key)
            return cached

        cache = self._seed_cache(key)
        result = self.optimizer.best_cost(key, cache=cache)
        self._remember(key, cache, result)
        return result

    def cost(self, materialized: Iterable) -> float:
        """``bestCost(Q, S)`` as a plain number (what the greedy loops consume)."""
        return self.evaluate(materialized).total_cost

    def use_cost(self, materialized: Iterable) -> float:
        """``bestUseCost(Q, S)`` — excludes the cost of computing/writing ``S``."""
        return self.evaluate(materialized).use_cost

    def volcano_cost(self) -> float:
        """The no-sharing baseline ``bestCost(Q, ∅)``."""
        return self.cost(frozenset())

    def standalone_materialization_costs(self, universe: Iterable) -> Dict:
        """Cost of computing each candidate without sharing, plus writing it to disk.

        This is the additive part of the natural MQO decomposition.  All
        candidates are costed against one shared plan-DP table (the empty
        materialization set), so the whole universe costs roughly one extra
        ``bestCost`` evaluation instead of one per node.  Sorted candidates
        additionally pay the sort needed to store the result in their order.
        """
        self.evaluate(frozenset())  # ensure the ∅ DP table exists
        cache = self._states.get(frozenset(), {})
        model = self.optimizer.cost_model
        costs: Dict = {}
        for element in universe:
            gid = _candidate_group(element)
            order = element.order if isinstance(element, MaterializationChoice) else ANY_ORDER
            group = self.dag.memo.get(gid)
            compute = self.optimizer._compute_without_reuse(gid, {}, cache)
            compute = self.optimizer._enforce(compute, order)
            costs[element] = compute.cost + model.materialize(group.rows, group.row_width)
        return costs

    # ------------------------------------------------------------- internals

    def _seed_cache(self, target: FrozenSet[int]) -> PlanCache:
        if not self.incremental or not self._states:
            self.statistics.full_evaluations += 1
            return {}
        best_base: Optional[FrozenSet[int]] = None
        for base in self._states:
            if base <= target:
                if best_base is None or len(target - base) < len(target - best_base):
                    best_base = base
        if best_base is None:
            self.statistics.full_evaluations += 1
            return {}
        diff = target - best_base
        cache = dict(self._states[best_base])
        affected: set = set()
        for element in diff:
            gid = _candidate_group(element)
            affected.add(gid)
            affected.update(self.dag.ancestors(gid))
        before = len(cache)
        for key in list(cache):
            if key[0] in affected:
                del cache[key]
        self.statistics.invalidated_entries += before - len(cache)
        self.statistics.incremental_evaluations += 1
        return cache

    def _remember(self, key: FrozenSet[int], cache: PlanCache, result: BestCostResult) -> None:
        self._states[key] = cache
        self._states.move_to_end(key)
        while len(self._states) > self.max_cached_states:
            self._states.popitem(last=False)
        self._results[key] = result
        self._results.move_to_end(key)
        while len(self._results) > self.max_cached_results:
            self._results.popitem(last=False)
