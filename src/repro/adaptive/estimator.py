"""The adaptive cardinality-estimator overlay.

:class:`AdaptiveCardinalityEstimator` sits between the static System-R
estimates of :mod:`repro.cost.cardinality` (frozen into the memo groups at
DAG build time) and the runtime observations of the
:class:`~repro.adaptive.stats.FeedbackStatsStore`: asked for the
cardinality of a node, it transparently prefers the *observed* value when
the store is confident about it, blends observed and static estimates when
confidence is partial, and falls back to the static estimate when the
observations are missing or stale (confidence decays with every
data-version epoch, mirroring the materialization cache's token
invalidation).
"""

from __future__ import annotations

from typing import Optional

from .stats import FeedbackStatsStore

__all__ = ["AdaptiveCardinalityEstimator"]


class AdaptiveCardinalityEstimator:
    """Prefer observed cardinalities over static estimates, by confidence.

    Args:
        store: the feedback store the observations come from.
        min_confidence: at or above this confidence the observed value is
            used verbatim; below it, observed and static estimates are
            blended linearly by confidence (a stale or single noisy
            observation nudges the estimate instead of replacing it).
    """

    def __init__(self, store: FeedbackStatsStore, *, min_confidence: float = 0.5):
        if not 0.0 <= min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")
        self.store = store
        self.min_confidence = min_confidence

    # ------------------------------------------------------------------ API

    def estimate_rows(self, key: str, static_rows: float) -> float:
        """The best available cardinality for a fingerprint.

        Returns the observed EWMA row count when confidence is at least
        :attr:`min_confidence`, the confidence-weighted blend
        ``c * observed + (1 - c) * static`` when it is lower, and the static
        estimate untouched when there is nothing (valid) observed.
        """
        entry = self.store.get(key)
        if entry is None:
            return static_rows
        confidence = self.store.confidence(key)
        if confidence <= 0.0:
            return static_rows
        if confidence >= self.min_confidence:
            return max(entry.rows, 1.0)
        blended = confidence * entry.rows + (1.0 - confidence) * static_rows
        return max(blended, 1.0)

    def observed_rows(self, key: str) -> Optional[float]:
        """The raw observed EWMA row count, or None when nothing is recorded."""
        entry = self.store.get(key)
        return entry.rows if entry is not None else None

    def observed_width(self, key: str) -> Optional[float]:
        """Observed bytes per row, or None when rows or bytes were not seen."""
        entry = self.store.get(key)
        return entry.row_width if entry is not None else None

    def confidence(self, key: str) -> float:
        return self.store.confidence(key)
