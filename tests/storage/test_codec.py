"""Property/fuzz tests for the spill codec.

The invariants (mirroring the PR 4 UTF-8 matcache tests one level down):

* **exact round trip** — ``decode(encode(rows)) == rows`` for arbitrary row
  payloads: non-ASCII strings, arbitrary-precision ints, floats (signed
  zero, inf, huge magnitudes), None, bools, bytes, and nested
  tuples/lists, with types preserved (a tuple never comes back a list),
* **byte-accounting identity** — the decoded rows produce the identical
  :func:`~repro.service.matcache.estimate_rows_bytes` number, so the hot
  tier accounts a faulted entry exactly like the original fill, and
* **corruption is always detected** — truncation at *every* byte boundary
  and any single-byte flip in the payload raise
  :class:`~repro.storage.codec.SpillFormatError`, never return wrong rows.
"""

import io
import math
import random

import pytest

from repro.service.matcache import estimate_rows_bytes
from repro.storage.codec import (
    SpillCodecError,
    SpillFormatError,
    decode_rows,
    decode_value,
    encode_rows,
    encode_value,
    read_spill_file,
    read_spill_header,
    write_spill_file,
)

KEY = ("fingerprint-π", "any")


def random_scalar(rng: random.Random):
    roll = rng.random()
    if roll < 0.15:
        return None
    if roll < 0.25:
        return rng.choice([True, False])
    if roll < 0.45:
        # Arbitrary precision, both signs, including giants.
        return rng.choice(
            [0, -1, 1, rng.randrange(-(10**6), 10**6), rng.randrange(10**30), -(2**77)]
        )
    if roll < 0.6:
        return rng.choice(
            [0.0, -0.0, 1.5, -2.25, 1e300, -1e-300, math.inf, -math.inf]
        )
    if roll < 0.9:
        alphabet = "aZ9 _π€日本語ß√n\n\t\"'\\"
        return "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 12)))
    return bytes(rng.randrange(256) for _ in range(rng.randrange(0, 8)))


def random_value(rng: random.Random, depth: int = 0):
    if depth < 3 and rng.random() < 0.25:
        count = rng.randrange(0, 4)
        items = [random_value(rng, depth + 1) for _ in range(count)]
        return tuple(items) if rng.random() < 0.5 else items
    return random_scalar(rng)


def random_rows(rng: random.Random):
    keys = ["t.k", "π-col", "payload", "日本語"]
    return [
        {key: random_value(rng) for key in rng.sample(keys, rng.randrange(1, len(keys) + 1))}
        for _ in range(rng.randrange(0, 6))
    ]


class TestValueRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**100,
            -(2**100),
            0.0,
            -0.0,
            1.5,
            math.inf,
            "",
            "héllo-π-日本語",
            b"",
            b"\x00\xff\x80",
            (),
            (1, (2, (3, "x"))),
            [],
            [1, [2.5, None]],
            {"k": (1, [2, b"3"])},
            ("mixed", [1, (2.0, None)], {"π": b"bytes"}),
        ],
    )
    def test_exact_round_trip(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_tuple_and_list_stay_distinct(self):
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert isinstance(decode_value(encode_value((1, 2))), tuple)
        assert isinstance(decode_value(encode_value([1, 2])), list)
        nested = decode_value(encode_value({"v": [(1, [2]), (3, [4])]}))
        assert isinstance(nested["v"], list)
        assert all(isinstance(item, tuple) for item in nested["v"])
        assert all(isinstance(item[1], list) for item in nested["v"])

    def test_signed_zero_and_int_float_identity_survive(self):
        decoded = decode_value(encode_value([-0.0, 0, 0.0, 1, 1.0]))
        assert math.copysign(1.0, decoded[0]) == -1.0
        assert type(decoded[1]) is int and type(decoded[2]) is float
        assert type(decoded[3]) is int and type(decoded[4]) is float

    def test_nan_round_trips(self):
        decoded = decode_value(encode_value(float("nan")))
        assert isinstance(decoded, float) and math.isnan(decoded)

    def test_bool_is_not_int(self):
        decoded = decode_value(encode_value([True, 1, False, 0]))
        assert [type(v) for v in decoded] == [bool, int, bool, int]

    def test_unencodable_values_raise_codec_error(self):
        with pytest.raises(SpillCodecError):
            encode_value({"k": object()})
        with pytest.raises(SpillCodecError):
            encode_value({1: "non-string key"})  # type: ignore[dict-item]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SpillFormatError):
            decode_value(encode_value(1) + b"x")


class TestRowsRoundTrip:
    @pytest.mark.parametrize("seed", range(20))
    def test_fuzz_rows_round_trip_byte_accounting_identically(self, seed):
        rng = random.Random(seed)
        rows = random_rows(rng)
        decoded = decode_rows(encode_rows(rows))
        assert decoded == rows
        assert estimate_rows_bytes(decoded) == estimate_rows_bytes(rows)

    def test_rows_must_be_dicts(self):
        with pytest.raises(SpillFormatError):
            decode_rows(encode_value([1, 2, 3]))
        with pytest.raises(SpillFormatError):
            decode_rows(encode_value({"not": "a list"}))


def spill_bytes(rows, *, token="tok", cost=12.5):
    buffer = io.BytesIO()
    write_spill_file(buffer, key=KEY, rows=rows, token=token, cost=cost)
    return buffer.getvalue()


class TestSpillFiles:
    def test_full_file_round_trip(self):
        rows = [{"t.k": 1, "π": "pâyløad", "v": (1.5, None)}]
        header, decoded = read_spill_file(io.BytesIO(spill_bytes(rows)))
        assert decoded == rows
        assert header.key == KEY
        assert header.token == "tok"
        assert header.cost == 12.5
        assert header.row_count == 1

    def test_header_alone_is_cheap_and_complete(self):
        data = spill_bytes([{"a": 1}] * 3)
        header = read_spill_header(io.BytesIO(data))
        assert header.row_count == 3
        assert header.payload_bytes > 0

    def test_tuple_tokens_survive_the_json_header(self):
        data = spill_bytes([{"a": 1}], token=("db", 0))
        header = read_spill_header(io.BytesIO(data))
        # JSON turns tuples into lists; the reader normalizes back.
        assert header.token == ("db", 0)

    @pytest.mark.parametrize("seed", range(4))
    def test_truncation_at_every_boundary_is_detected(self, seed):
        rng = random.Random(seed)
        data = spill_bytes(random_rows(rng) or [{"k": 1}])
        for cut in range(len(data)):
            with pytest.raises(SpillFormatError):
                read_spill_file(io.BytesIO(data[:cut]))

    @pytest.mark.parametrize("seed", range(4))
    def test_any_single_byte_flip_is_detected(self, seed):
        """Flip one byte anywhere — magic, header or payload — and the read
        must fail (header flips break the JSON/fields, payload flips break
        the checksum); it must never silently return different rows."""
        rng = random.Random(100 + seed)
        rows = random_rows(rng) or [{"k": 1}]
        data = spill_bytes(rows)
        for _ in range(40):
            position = rng.randrange(len(data))
            corrupted = bytearray(data)
            corrupted[position] ^= 1 + rng.randrange(255)
            try:
                header, decoded = read_spill_file(io.BytesIO(bytes(corrupted)))
            except SpillFormatError:
                continue
            # A flip that survived verification must not have changed
            # anything that matters (e.g. a JSON-insignificant byte can't
            # exist here; be explicit rather than assume).
            assert decoded == rows and header.key == KEY

    def test_trailing_bytes_after_payload_rejected(self):
        data = spill_bytes([{"k": 1}])
        with pytest.raises(SpillFormatError):
            read_spill_file(io.BytesIO(data + b"junk"))

    def test_not_a_spill_file(self):
        with pytest.raises(SpillFormatError):
            read_spill_header(io.BytesIO(b"definitely not a spill file"))
        with pytest.raises(SpillFormatError):
            read_spill_header(io.BytesIO(b""))
