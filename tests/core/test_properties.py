"""Property-based tests (hypothesis) for the submodular core.

These exercise the paper's structural claims on randomly generated
instances: Proposition 1 (validity of the canonical decomposition),
Proposition 2 (fixed point / monotonicity preservation), Theorem 1 (the
approximation bound holds against the exhaustive optimum), Theorem 4
(pruning never changes the greedy output), and the equivalence of lazy and
eager greedy variants under supermodular cost oracles.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.coverage import CoverageFunction, MaxCoverageInstance, ProfittedMaxCoverage
from repro.core.decomposition import (
    canonical_decomposition,
    decomposition_from_parts,
    improve_decomposition,
    verify_decomposition,
)
from repro.core.exhaustive import maximize
from repro.core.greedy import greedy, lazy_greedy
from repro.core.marginal_greedy import (
    lazy_marginal_greedy,
    marginal_greedy,
    theorem1_bound,
)
from repro.core.pruning import prune_universe
from repro.core.set_functions import (
    AdditiveFunction,
    LambdaSetFunction,
    RestrictedFunction,
    all_subsets,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def coverage_instances(draw, max_elements=8, max_subsets=5):
    """Random coverable Max Coverage instances."""
    n_elements = draw(st.integers(min_value=2, max_value=max_elements))
    n_subsets = draw(st.integers(min_value=2, max_value=max_subsets))
    ground = list(range(n_elements))
    subsets = []
    for _ in range(n_subsets):
        members = draw(
            st.sets(st.sampled_from(ground), min_size=0, max_size=n_elements)
        )
        subsets.append(frozenset(members))
    # Guarantee coverability: dump all elements into the first subset's union gap.
    missing = set(ground) - set().union(*subsets) if subsets else set(ground)
    if missing:
        subsets[0] = subsets[0] | frozenset(missing)
    budget = draw(st.integers(min_value=1, max_value=n_subsets))
    return MaxCoverageInstance(
        ground_set=frozenset(ground), subsets=tuple(subsets), budget=budget
    )


@st.composite
def profitted_problems(draw):
    instance = draw(coverage_instances())
    gamma = draw(st.floats(min_value=0.5, max_value=5.0, allow_nan=False))
    return ProfittedMaxCoverage(instance, gamma=gamma)


@st.composite
def weighted_coverage_decompositions(draw, max_elements=7, max_sets=5):
    """Decompositions fM − c with fM a weighted coverage and c additive positive."""
    n_elements = draw(st.integers(min_value=2, max_value=max_elements))
    n_sets = draw(st.integers(min_value=2, max_value=max_sets))
    ground = list(range(n_elements))
    element_weights = {
        e: draw(st.floats(min_value=0.1, max_value=5.0, allow_nan=False)) for e in ground
    }
    families = {}
    for i in range(n_sets):
        members = draw(st.sets(st.sampled_from(ground), min_size=1, max_size=n_elements))
        families[i] = frozenset(members)

    def weighted_coverage(subset):
        covered = set()
        for i in subset:
            covered |= families[i]
        return float(sum(element_weights[e] for e in covered))

    monotone = LambdaSetFunction(families.keys(), weighted_coverage)
    cost = AdditiveFunction(
        {
            i: draw(st.floats(min_value=0.1, max_value=6.0, allow_nan=False))
            for i in families
        }
    )
    return decomposition_from_parts(monotone, cost)


@st.composite
def supermodular_cost_oracles(draw, max_nodes=5):
    """Random supermodular bestCost oracles built as base − (monotone submodular)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = [f"n{i}" for i in range(n)]
    element_pool = list(range(2 * n))
    families = {}
    for node in nodes:
        members = draw(
            st.sets(st.sampled_from(element_pool), min_size=0, max_size=len(element_pool))
        )
        families[node] = frozenset(members)
    unit = draw(st.floats(min_value=0.5, max_value=3.0, allow_nan=False))
    overhead = {
        node: draw(st.floats(min_value=0.0, max_value=4.0, allow_nan=False))
        for node in nodes
    }
    base = 100.0

    def bc(subset):
        covered = set()
        for node in subset:
            covered |= families[node]
        saving = unit * len(covered) - sum(overhead[node] for node in subset)
        return base - saving

    return LambdaSetFunction(nodes, bc)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(weighted_coverage_decompositions())
def test_canonical_decomposition_is_valid(dec):
    """Proposition 1: f = f*M − c* with f*M monotone, on random instances."""
    canonical = canonical_decomposition(dec.original)
    assert verify_decomposition(canonical, tol=1e-6)


@settings(max_examples=40, deadline=None)
@given(weighted_coverage_decompositions())
def test_improvement_step_preserves_validity(dec):
    """Proposition 2: the improvement step yields another valid decomposition."""
    improved = improve_decomposition(dec)
    assert verify_decomposition(improved, tol=1e-6)


@settings(max_examples=30, deadline=None)
@given(profitted_problems())
def test_theorem1_bound_holds(problem):
    """Theorem 1: MarginalGreedy meets the approximation bound vs the true optimum."""
    dec = problem.decomposition()
    optimum = maximize(dec.original)
    result = marginal_greedy(dec)
    if optimum.best_value <= 1e-12:
        # Bound is vacuous; just check greedy never does worse than the empty set.
        assert result.value >= -1e-9
        return
    c_opt = dec.cost.value(optimum.best_set)
    bound = theorem1_bound(optimum.best_value, c_opt)
    assert result.value >= bound - 1e-7


@settings(max_examples=30, deadline=None)
@given(weighted_coverage_decompositions())
def test_lazy_equals_eager_marginal_greedy(dec):
    eager = marginal_greedy(dec)
    lazy = lazy_marginal_greedy(dec)
    assert lazy.selected == eager.selected
    assert math.isclose(lazy.value, eager.value, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=30, deadline=None)
@given(supermodular_cost_oracles())
def test_lazy_equals_eager_greedy_on_supermodular_costs(oracle):
    eager = greedy(oracle)
    lazy = lazy_greedy(oracle)
    assert lazy.selected == eager.selected
    assert math.isclose(lazy.final_cost, eager.final_cost, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=30, deadline=None)
@given(weighted_coverage_decompositions(), st.integers(min_value=1, max_value=4))
def test_pruning_never_changes_greedy_output(dec, k):
    """Theorem 4 on random instances: greedy on U' equals greedy on U."""
    report = prune_universe(dec, k)
    full = marginal_greedy(dec, cardinality=k)
    pruned_dec = decomposition_from_parts(
        RestrictedFunction(dec.monotone, report.kept),
        AdditiveFunction({e: dec.element_cost(e) for e in report.kept}),
        original=RestrictedFunction(dec.original, report.kept),
    )
    reduced = marginal_greedy(pruned_dec, cardinality=k)
    assert reduced.selected == full.selected


@settings(max_examples=25, deadline=None)
@given(coverage_instances())
def test_coverage_function_is_monotone_submodular(instance):
    fn = CoverageFunction(instance)
    assert fn.is_monotone()
    assert fn.is_submodular()
    assert fn.is_normalized()


@settings(max_examples=25, deadline=None)
@given(weighted_coverage_decompositions())
def test_greedy_value_never_below_empty_set(dec):
    """Ratio-driven picks strictly increase f, so the result is never below f(∅)=0."""
    result = marginal_greedy(dec, add_negative_cost_elements=False)
    assert result.value >= -1e-9


@settings(max_examples=25, deadline=None)
@given(supermodular_cost_oracles())
def test_greedy_never_increases_cost(oracle):
    result = greedy(oracle)
    assert result.final_cost <= result.initial_cost + 1e-9
    costs = [result.initial_cost] + [s.cost_after for s in result.steps]
    assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))
