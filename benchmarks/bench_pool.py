"""Sharded-serving benchmark: a 4-shard SessionPool vs. one OptimizerSession.

The serving acceptance bar for the sharded layer, now driven by the
workload harness's traffic simulator (:mod:`repro.workloads.harness`)
instead of a hand-rolled submit loop: Zipf-skewed multi-tenant template
traffic — the same generator the ``python -m repro.workloads.harness``
CLI uses — is replayed identically through a ``SessionPool(shards=4)``
and a single ``OptimizerSession``, both behind the production
:class:`~repro.service.scheduler.BatchScheduler`.  The pool must return
**bit-identical rows** for every request and stay within a bounded
wall-clock overhead of the single session (``MAX_POOL_OVERHEAD``).

History, because the bar used to be "pool wins outright": the single
session once lost by 3-13x for a structural reason — its one memo's
subsumption pass compared every new group against everything earlier
traffic left behind, superlinearly, and sharding dodged that by
splitting the memo.  The OR-group budget
(``DagConfig.max_or_groups_per_sources``) fixed the pathology at the
source (~175x faster per batch), which also deleted the pool's edge:
with linear memo cost, in-process shards duplicate cold template
interning and the GIL serializes their CPU work, so the pool now
measures parity-within-noise against the single session (roughly
0.85-1.1x across runs) in one process.  This
module pins that overhead so it cannot silently grow; the
process-per-shard rewrite (ROADMAP) is what turns sharding back into a
throughput win, with this benchmark as its before/after instrument.

Besides the assertions, the module writes ``BENCH_pool.json`` (at the
repository root, or ``REPRO_BENCH_OUT``) recording both drive times,
throughputs, the per-shard distribution and the serving-latency
percentiles straight from the observability registry's histograms, for CI
to upload as an artifact.  Under ``REPRO_BENCH_TINY`` the traffic shrinks
to smoke scale and the overhead bound is skipped (row identity still
holds).
"""

import json

import pytest

from _env import bench_path, scaled, tiny
from repro.obs import Observability
from repro.service import BatchScheduler, OptimizerSession, SessionPool
from repro.workloads.harness import TrafficSpec, generate_traffic, star_templates
from repro.workloads.harness.controller import LATENCY_SERIES, drive_requests
from repro.workloads.synthetic import star_schema_catalog, star_schema_database

N_DIMENSIONS = 4
SHARDS = 4
WORKERS = 4
MAX_BATCH = 4
STRATEGY = "greedy"
TEMPLATES = 6
TENANTS = 8
ZIPF = 1.2

#: The pool may cost at most this factor of the single session's wall
#: clock.  Measured in-process cost is ~0.9-1.2x (GIL-bound shards
#: duplicating cold interning; parity within noise); 1.7 absorbs
#: CI-runner noise while still flagging a real regression in the layer.
MAX_POOL_OVERHEAD = 1.7


@pytest.fixture(scope="module")
def catalog():
    return star_schema_catalog(n_dimensions=N_DIMENSIONS)


@pytest.fixture(scope="module")
def database():
    return star_schema_database(seed=9, n_dimensions=N_DIMENSIONS)


@pytest.fixture(scope="module")
def traffic():
    """Skewed multi-tenant closed-loop traffic, every request row-sampled."""
    templates = star_templates(TEMPLATES, n_dimensions=N_DIMENSIONS, seed=1)
    spec = TrafficSpec(
        requests=scaled(140, 24),
        tenants=TENANTS,
        zipf=ZIPF,
        arrival="closed",
        oracle_sample=1.0,  # keep every request's rows for the identity check
        seed=5,
    )
    return generate_traffic(templates, spec)


def drive(serving, traffic):
    """Replay the simulated traffic through the production scheduler.

    Returns the :class:`~repro.workloads.harness.controller.DriveResult`
    — wall seconds plus every request's rows (the traffic samples 100%).
    """
    with BatchScheduler(
        serving, workers=WORKERS, max_batch_size=MAX_BATCH, strategy=STRATEGY
    ) as scheduler:
        result = drive_requests(
            scheduler,
            traffic,
            obs=serving.obs,
            strategy=STRATEGY,
            open_loop=False,
        )
        scheduler.flush(timeout=600)
    return result


def latency_percentiles(obs: Observability):
    """p50/p95/p99 (seconds) of every labeled latency series kept."""
    out = {}
    for _, name in LATENCY_SERIES:
        for labels, snapshot in sorted(obs.registry.histogram_snapshots(name).items()):
            key = name
            if labels:
                key += "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            out[key] = {
                "p50": snapshot.p50,
                "p95": snapshot.p95,
                "p99": snapshot.p99,
                "count": snapshot.count,
            }
    return out


def test_pool_matches_single_session_with_identical_rows(
    catalog, database, traffic
):
    """The acceptance criterion, asserted directly; writes BENCH_pool.json.

    The pool drive runs twice (a fresh pool each time, best-of-2) to keep
    a scheduling hiccup on a noisy CI runner from pushing it over the
    overhead bound; noise on the single-session side only relaxes the
    bound, so one drive suffices there.
    """
    pool_results = []
    for _ in range(2):
        pool = SessionPool(catalog, shards=SHARDS, database=database)
        pool_results.append(drive(pool, traffic))
    pool_result = min(pool_results, key=lambda r: r.wall_seconds)

    single = OptimizerSession(catalog, database=database)
    single_result = drive(single, traffic)

    assert pool_result.sampled_rows == single_result.sampled_rows, (
        "sharding must never change computed rows"
    )
    assert len(pool_result.sampled_rows) == len(traffic)

    requests = len(traffic)
    pool_rps = requests / pool_result.wall_seconds
    single_rps = requests / single_result.wall_seconds
    if not tiny():
        assert pool_result.wall_seconds <= MAX_POOL_OVERHEAD * single_result.wall_seconds, (
            f"{SHARDS}-shard pool ({pool_result.wall_seconds:.2f}s) exceeded "
            f"{MAX_POOL_OVERHEAD}x the single session "
            f"({single_result.wall_seconds:.2f}s): sharding overhead regressed"
        )

    shard_load = [s.batches_served for s in pool.shard_statistics()]
    assert sum(shard_load) > 0
    assert sum(1 for load in shard_load if load) >= 2, "traffic should spread"

    bench_path("BENCH_pool.json").write_text(
        json.dumps(
            {
                "unit": "seconds",
                "workers": WORKERS,
                "shards": SHARDS,
                "strategy": STRATEGY,
                "traffic": {
                    "requests": requests,
                    "templates": TEMPLATES,
                    "tenants": TENANTS,
                    "zipf": ZIPF,
                    "arrival": "closed",
                },
                "tiny": tiny(),
                "single_session_time": single_result.wall_seconds,
                "pool_time": pool_result.wall_seconds,
                "single_session_requests_per_s": single_rps,
                "pool_requests_per_s": pool_rps,
                "speedup": single_result.wall_seconds / pool_result.wall_seconds,
                "shard_batches_served": shard_load,
                "rows_identical": True,
                "latency_percentiles": {
                    "pool": latency_percentiles(pool.obs),
                    "single_session": latency_percentiles(single.obs),
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
