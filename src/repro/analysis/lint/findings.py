"""The lint finding model and its reporters (text and JSON).

A :class:`Finding` is one defect at one source location: ``path:line:col``
plus the checker id that produced it and a human rationale.  Findings are
value objects — ordered, hashable, JSON round-trippable — so reports can be
diffed, stored as CI artifacts and reloaded for tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "Finding",
    "LintReport",
    "finding_from_dict",
    "render_json",
    "render_text",
    "report_from_json",
]

#: Schema version of the JSON report (bump on incompatible change).
REPORT_FORMAT = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One lint defect at one source location.

    Attributes:
        path: the file the finding is in (as given to the engine).
        line / col: 1-based line and 0-based column of the flagged node.
        checker: the id of the checker that produced it (``falsy-default``,
            ``lock-discipline``, ...).
        message: the rationale — what is wrong *here* and why it matters.
        suppressed: True when a valid ``# repro-lint: disable=`` comment
            covers the line; suppressed findings are reported separately
            and never fail the run.
        reason: the written reason of the suppression (required — a
            suppression without one is itself a finding and does not
            suppress).
    """

    path: str
    line: int
    col: int
    checker: str
    message: str
    suppressed: bool = False
    reason: Optional[str] = None

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "checker": self.checker,
            "message": self.message,
        }
        if self.suppressed:
            out["suppressed"] = True
            out["reason"] = self.reason
        return out


def finding_from_dict(data: Dict[str, object]) -> Finding:
    return Finding(
        path=str(data["path"]),
        line=int(data["line"]),  # type: ignore[arg-type]
        col=int(data["col"]),  # type: ignore[arg-type]
        checker=str(data["checker"]),
        message=str(data["message"]),
        suppressed=bool(data.get("suppressed", False)),
        reason=(None if data.get("reason") is None else str(data["reason"])),
    )


@dataclass
class LintReport:
    """Everything one lint run produced.

    Attributes:
        findings: live findings — these fail the run.
        suppressed: findings covered by a reasoned suppression comment
            (kept for audit: every suppression's reason is in the report).
        files: how many files were analyzed.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def sort(self) -> "LintReport":
        self.findings.sort()
        self.suppressed.sort()
        return self

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": REPORT_FORMAT,
            "files": self.files,
            "summary": {
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "files": self.files,
            },
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
        }


def report_from_json(text: str) -> LintReport:
    """Reload a report rendered by :func:`render_json` (round-trip exact)."""
    data = json.loads(text)
    if data.get("format") != REPORT_FORMAT:
        raise ValueError(f"unsupported lint report format {data.get('format')!r}")
    return LintReport(
        findings=[finding_from_dict(f) for f in data["findings"]],
        suppressed=[finding_from_dict(f) for f in data["suppressed"]],
        files=int(data["files"]),
    )


def render_json(report: LintReport) -> str:
    return json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"


def render_text(report: LintReport, *, verbose_suppressed: bool = False) -> str:
    """The human report: one ``path:line:col: [id] message`` line per finding."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: [{finding.checker}] {finding.message}")
    if verbose_suppressed:
        for finding in report.suppressed:
            lines.append(
                f"{finding.location()}: [{finding.checker}] suppressed "
                f"({finding.reason}): {finding.message}"
            )
    summary = (
        f"{len(report.findings)} finding(s), {len(report.suppressed)} suppressed, "
        f"{report.files} file(s) analyzed"
    )
    lines.append(summary)
    return "\n".join(lines) + "\n"
