"""The catalog: schema + statistics + indices, keyed by table name."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .schema import Column, Index, Table
from .statistics import TableStatistics

__all__ = ["Catalog", "CatalogError"]


class CatalogError(KeyError):
    """Raised when a table, column or index lookup fails."""


@dataclass
class Catalog:
    """A registry of tables, their statistics and their indices.

    The optimizer resolves every alias used in a query to a table in the
    catalog, reads statistics from it for cardinality estimation, and asks
    it for clustered indices when costing indexed selections and index
    nested-loop joins.
    """

    tables: Dict[str, Table] = field(default_factory=dict)
    statistics: Dict[str, TableStatistics] = field(default_factory=dict)
    indexes: Dict[str, List[Index]] = field(default_factory=dict)

    # -- registration ----------------------------------------------------

    def add_table(
        self,
        table: Table,
        statistics: TableStatistics,
        indexes: Iterable[Index] = (),
    ) -> None:
        """Register a table with its statistics and (optionally) indices."""
        if table.name in self.tables:
            raise CatalogError(f"table {table.name!r} is already registered")
        self.tables[table.name] = table
        self.statistics[table.name] = statistics
        self.indexes[table.name] = []
        for index in indexes:
            self.add_index(index)

    def add_index(self, index: Index) -> None:
        if index.table not in self.tables:
            raise CatalogError(f"cannot index unknown table {index.table!r}")
        table = self.tables[index.table]
        for column in index.columns:
            if not table.has_column(column):
                raise CatalogError(
                    f"index {index.name!r} references unknown column {column!r}"
                )
        self.indexes.setdefault(index.table, []).append(index)

    # -- lookups ----------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError as exc:
            raise CatalogError(f"unknown table {name!r}") from exc

    def table_statistics(self, name: str) -> TableStatistics:
        try:
            return self.statistics[name]
        except KeyError as exc:
            raise CatalogError(f"no statistics for table {name!r}") from exc

    def table_indexes(self, name: str) -> Tuple[Index, ...]:
        return tuple(self.indexes.get(name, ()))

    def clustered_index(self, name: str) -> Optional[Index]:
        for index in self.indexes.get(name, ()):
            if index.clustered:
                return index
        return None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def find_table_for_column(self, column: str) -> Optional[str]:
        """Return the unique table owning ``column``, or ``None`` if ambiguous/unknown.

        TPC-D column names are globally unique, which makes unqualified
        column references unambiguous; the binder relies on this helper.
        """
        owners = [name for name, table in self.tables.items() if table.has_column(column)]
        if len(owners) == 1:
            return owners[0]
        return None

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __len__(self) -> int:
        return len(self.tables)
