"""Must-pass fixture for ``bare-except-swallow``: handlers that act.

Never imported; the checker tests lint this file's source and assert zero
findings.
"""

import queue


def fallback(path):
    try:
        return open(path).read()
    except OSError:
        return ""


def recorded(statistics, handle):
    try:
        handle.flush()
    except OSError:
        statistics.flush_errors += 1


def reraised(payload):
    try:
        return payload.decode()
    except UnicodeDecodeError as exc:
        raise ValueError("payload is not text") from exc


def drain(q):
    # break/continue on a polling loop: the exception *is* the signal.
    items = []
    while True:
        try:
            items.append(q.get_nowait())
        except queue.Empty:
            break
    return items


def suppressed_with_reason(path):
    import os

    try:
        os.unlink(path)
    # repro-lint: disable=bare-except-swallow -- best-effort cleanup; a leaked temp file is swept at startup
    except OSError:
        pass
