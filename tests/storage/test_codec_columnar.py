"""Property/fuzz tests for the columnar (format 2) spill layout.

Same contract as the row layout one file over, plus the columnar-specific
invariants:

* **exact round trip** — ``decode_batch(encode_batch(batch))`` reproduces
  the batch's rows bit-for-bit: non-ASCII column names and strings,
  arbitrary-precision ints (the packed-int64 path must reject them),
  bools (never silently packed as ints), None-heavy columns, and masked
  (absent-key) cells,
* **corruption is always detected** — truncating the payload at every
  byte boundary and flipping any single payload byte raise
  :class:`~repro.storage.codec.SpillFormatError`, never wrong rows, and
* **both layouts interoperate** — a format-1 file still decodes through
  the batch reader, and a format-2 file through the row reader.
"""

import io
import random

import pytest

from repro.execution.columnar import ColumnBatch
from repro.storage.codec import (
    SPILL_FORMAT,
    SPILL_FORMAT_COLUMNAR,
    SpillFormatError,
    decode_batch,
    encode_batch,
    read_spill_batch,
    read_spill_file,
    read_spill_header,
    write_spill_file,
)

KEY = ("fp-столбцы", "any")


def random_rows(rng: random.Random, n_rows=None):
    """Heterogeneous rows: absent keys, None, big ints, non-ASCII."""
    keys = ["t.k", "π-col", "payload", "日本語", "v"]
    values = [
        None,
        True,
        False,
        0,
        -1,
        2**77,
        -(2**63),
        2**63 - 1,
        0.0,
        -0.0,
        1e300,
        "plain",
        "日本語π€",
        b"\x00\xffbytes",
        (1, "two"),
        ["nested", None],
    ]
    count = rng.randrange(0, 6) if n_rows is None else n_rows
    return [
        {
            key: rng.choice(values)
            for key in rng.sample(keys, rng.randrange(1, len(keys) + 1))
        }
        for _ in range(count)
    ]


def columnar_spill_bytes(rows, *, token="tok", cost=3.5):
    buffer = io.BytesIO()
    write_spill_file(
        buffer, key=KEY, rows=rows, token=token, cost=cost, layout="columnar"
    )
    return buffer.getvalue()


def payload_offset(data: bytes) -> int:
    """First byte after the magic and JSON header lines (the checksummed
    region)."""
    return data.index(b"\n", data.index(b"\n") + 1) + 1


class TestBatchRoundTrip:
    @pytest.mark.parametrize(
        "rows",
        [
            [],
            [{}, {}],
            [{"t.a": 1, "t.b": 2.5}, {"t.a": 2, "t.b": -0.0}],
            [{"π": "日本語"}, {"π": None}, {}],  # None vs absent
            [{"n": 2**100}, {"n": -(2**64)}, {"n": 7}],  # giants defeat packing
            [{"b": True}, {"b": False}, {"b": 1}],  # bools must stay bools
            [{"v": (1, [None, "x"])}, {"v": b"\x00"}],
        ],
    )
    def test_exact_round_trip(self, rows):
        decoded = decode_batch(encode_batch(ColumnBatch.from_rows(rows)))
        assert decoded.to_rows() == rows

    def test_packed_paths_preserve_types(self):
        # Homogeneous int64 / float64 columns take the packed paths; the
        # round trip must not launder ints into floats or bools into ints.
        rows = [{"i": i, "f": float(i)} for i in range(50)]
        decoded = decode_batch(encode_batch(ColumnBatch.from_rows(rows)))
        out = decoded.to_rows()
        assert out == rows
        assert all(type(r["i"]) is int and type(r["f"]) is float for r in out)

    def test_none_heavy_column(self):
        rows = [{"t.v": None} for _ in range(100)] + [{"t.v": 1}]
        decoded = decode_batch(encode_batch(ColumnBatch.from_rows(rows)))
        assert decoded.to_rows() == rows

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_round_trip(self, seed):
        rows = random_rows(random.Random(seed))
        decoded = decode_batch(encode_batch(ColumnBatch.from_rows(rows)))
        assert decoded.to_rows() == rows

    def test_trailing_garbage_rejected(self):
        payload = encode_batch(ColumnBatch.from_rows([{"a": 1}]))
        with pytest.raises(SpillFormatError):
            decode_batch(payload + b"\x00")

    def test_empty_payload_rejected(self):
        with pytest.raises(SpillFormatError):
            decode_batch(b"")


class TestColumnarSpillFiles:
    def test_full_file_round_trip(self):
        rows = [{"t.k": 1, "π": "pâyløad", "v": (1.5, None)}, {"t.k": 2}]
        data = columnar_spill_bytes(rows)
        header, decoded = read_spill_file(io.BytesIO(data))
        assert decoded == rows
        assert header.format == SPILL_FORMAT_COLUMNAR
        assert header.key == KEY
        assert header.row_count == 2

    def test_read_spill_batch_from_columnar_file(self):
        rows = [{"t.a": i, "t.s": f"ρ{i}"} for i in range(5)]
        header, batch = read_spill_batch(io.BytesIO(columnar_spill_bytes(rows)))
        assert isinstance(batch, ColumnBatch)
        assert batch.to_rows() == rows
        assert header.format == SPILL_FORMAT_COLUMNAR

    def test_v1_files_still_decode_on_both_paths(self):
        """Old row-layout files keep working after the format bump."""
        rows = [{"t.a": 1, "t.b": None}, {"t.a": 2}]
        buffer = io.BytesIO()
        write_spill_file(buffer, key=KEY, rows=rows, token="tok", cost=1.0)
        data = buffer.getvalue()
        header = read_spill_header(io.BytesIO(data))
        assert header.format == SPILL_FORMAT
        assert read_spill_file(io.BytesIO(data))[1] == rows
        _, batch = read_spill_batch(io.BytesIO(data))
        assert batch.to_rows() == rows

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            write_spill_file(
                io.BytesIO(), key=KEY, rows=[], token="t", cost=0.0, layout="parquet"
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_truncation_at_every_boundary_is_detected(self, seed):
        rng = random.Random(seed)
        data = columnar_spill_bytes(random_rows(rng) or [{"k": 1}])
        for cut in range(len(data)):
            with pytest.raises(SpillFormatError):
                read_spill_file(io.BytesIO(data[:cut]))
            with pytest.raises(SpillFormatError):
                read_spill_batch(io.BytesIO(data[:cut]))

    @pytest.mark.parametrize("seed", range(4))
    def test_every_payload_byte_flip_is_detected(self, seed):
        """The payload is checksummed: a flip of any single payload byte
        must raise, never decode to different rows.  (Header bytes live
        outside the checksum — their integrity is enforced one layer up by
        the cache's key/token checks, as for the row layout.)"""
        rng = random.Random(100 + seed)
        data = columnar_spill_bytes(random_rows(rng, n_rows=3) or [{"k": 1}])
        start = payload_offset(data)
        for position in range(start, len(data)):
            corrupted = bytearray(data)
            corrupted[position] ^= 1 + rng.randrange(255)
            with pytest.raises(SpillFormatError):
                read_spill_file(io.BytesIO(bytes(corrupted)))
