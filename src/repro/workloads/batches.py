"""Composite batches BQ1–BQ6 for Experiment 1.

"The workload consists of subsequences of the queries Q3, Q5, Q7, Q8, Q9
and Q10.  Each query was repeated twice with different selection constants.
Composite query BQi consists of the first i of the above queries."
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..algebra.logical import QueryBatch
from .tpcd_queries import BATCHED_QUERY_BUILDERS, batched_queries

__all__ = ["composite_batch", "all_composite_batches", "COMPOSITE_BATCH_NAMES"]

#: BQ1 … BQ6, in order.
COMPOSITE_BATCH_NAMES: Tuple[str, ...] = tuple(
    f"BQ{i}" for i in range(1, len(BATCHED_QUERY_BUILDERS) + 1)
)


def composite_batch(index: int) -> QueryBatch:
    """The composite batch ``BQ<index>`` (1-based, as in the paper)."""
    if not 1 <= index <= len(BATCHED_QUERY_BUILDERS):
        raise ValueError(
            f"composite batch index must be between 1 and {len(BATCHED_QUERY_BUILDERS)}"
        )
    return QueryBatch(f"BQ{index}", tuple(batched_queries(index)))


def all_composite_batches() -> Dict[str, QueryBatch]:
    """All composite batches keyed by name (BQ1 … BQ6)."""
    return {name: composite_batch(i + 1) for i, name in enumerate(COMPOSITE_BATCH_NAMES)}
