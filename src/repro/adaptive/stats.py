"""The runtime-feedback statistics store.

Every execution through the serving layer observes real row counts, byte
sizes and wall-clock timings for the plan nodes it runs (materialized
shared subexpressions and query roots).  The :class:`FeedbackStatsStore`
keeps those observations keyed by the **semantic fingerprint** of the node
(:func:`~repro.dag.fingerprint.canonical_key`), never by memo group id, so
one store serves every batch of a session and survives memo rebuilds —
exactly like the :class:`~repro.service.matcache.MaterializationCache`.

Observations are folded with an exponentially weighted moving average, and
the store is bound to the database's data-version token the same way the
materialization cache is: a token change bumps the store's *epoch*, which
decays the confidence of every earlier observation (the data they were
measured against is gone).  An observation recorded *after* an epoch bump
resets the moving averages — numbers measured against old data must not
bleed into estimates for the new data.

All operations are thread-safe.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Hashable, Optional, Tuple, Union

from ..analysis.sanitizer import sanitize_lock
from ..obs import MetricsRegistry, StatisticsView, metric_field
from ..obs.metrics import LabelsLike

__all__ = [
    "FeedbackStatistics",
    "FeedbackStatsStore",
    "ObservedStats",
    "SnapshotError",
]

#: Bump when the snapshot layout changes; ``restore`` rejects unknown versions.
SNAPSHOT_FORMAT = 1


class SnapshotError(ValueError):
    """A feedback snapshot file is corrupt, truncated or mis-versioned."""


def _comparable_token(token: object) -> object:
    """A token in canonical comparable form (lists/tuples collapse to tuples).

    Snapshots go through JSON, which turns tuples into lists; normalizing
    both the stored and the live token makes the comparison representation-
    independent.  (Deliberately duplicated from
    :func:`repro.storage.codec.wire_token`: this module must not import
    :mod:`repro.storage`, which sits above :mod:`repro.service`, which
    imports this package.)
    """
    if isinstance(token, (tuple, list)):
        return tuple(_comparable_token(item) for item in token)
    if token is None or isinstance(token, (bool, int, float, str)):
        return token
    return repr(token)


def _json_token(token: object) -> object:
    """The JSON-serializable form of a (normalized) token."""
    normalized = _comparable_token(token)
    if isinstance(normalized, tuple):
        return [_json_token(item) for item in normalized]
    return normalized


@dataclass(frozen=True)
class ObservedStats:
    """The folded runtime observations for one semantic fingerprint.

    Attributes:
        key: the canonical fingerprint the observations belong to.
        observations: how many times this node was observed (since the last
            epoch reset).
        rows / bytes: EWMA of observed output cardinality and byte size.
        elapsed: EWMA of observed wall seconds spent computing the node
            (children included — the executor is an interpreter, so this is
            the measured recomputation time the cache policy trades against
            stored bytes).
        last_rows: the most recent raw row-count observation.
        epoch: the store epoch the last observation was recorded in.
    """

    key: str
    observations: int = 0
    rows: float = 0.0
    bytes: float = 0.0
    elapsed: float = 0.0
    last_rows: float = 0.0
    epoch: int = 0

    @property
    def row_width(self) -> Optional[float]:
        """Observed bytes per row, when both quantities were observed."""
        if self.rows <= 0 or self.bytes <= 0:
            return None
        return self.bytes / self.rows


class FeedbackStatistics(StatisticsView):
    """Counters describing how the store collected its observations.

    A live view over a :class:`~repro.obs.MetricsRegistry` (series
    ``feedback_records``, ``feedback_evictions``, ...); the public fields
    are unchanged from the former dataclass.
    """

    _prefix = "feedback_"

    records = metric_field()
    epoch_resets = metric_field()
    token_changes = metric_field()
    evictions = metric_field()
    snapshots_written = metric_field()
    entries_restored = metric_field()


class FeedbackStatsStore:
    """Observed-cardinality statistics keyed by semantic fingerprint.

    Args:
        ewma_alpha: weight of the newest observation in the moving averages
            (1.0 = keep only the latest measurement).
        epoch_decay: confidence multiplier applied per epoch an observation
            lags behind the store (the data-version analogue of the
            materialization cache's hard invalidation — soft, because a
            stale cardinality is still a better prior than none).
        max_entries: bound on tracked fingerprints; the least recently
            *updated* entry is dropped first.
    """

    def __init__(
        self,
        *,
        ewma_alpha: float = 0.5,
        epoch_decay: float = 0.5,
        max_entries: int = 4096,
        registry: Optional[MetricsRegistry] = None,
        labels: LabelsLike = None,
    ):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 <= epoch_decay <= 1.0:
            raise ValueError("epoch_decay must be in [0, 1]")
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.ewma_alpha = ewma_alpha
        self.epoch_decay = epoch_decay
        self.max_entries = max_entries
        self.statistics = FeedbackStatistics(registry, labels=labels)
        # Under REPRO_SANITIZE=1 the lock joins the cross-thread lock-order
        # graph (see repro.analysis.sanitizer); otherwise it is a bare RLock.
        self._lock = sanitize_lock(threading.RLock(), "feedback")
        # Least recently updated first; record() moves keys to the end.
        self._entries: "OrderedDict[str, ObservedStats]" = OrderedDict()
        self._token: Optional[Hashable] = None
        self._epoch = 0

    # ----------------------------------------------------------------- state

    @property
    def epoch(self) -> int:
        """Monotone counter bumped whenever the data-version token changes."""
        with self._lock:
            return self._epoch

    def statistics_snapshot(self) -> Dict[str, int]:
        """A *consistent* copy of the feedback counters, under the lock.

        :attr:`statistics` is a live view over the shared registry; reading
        several of its fields bare can observe a torn multi-counter state
        (an observation counted whose refinement is not).  Aggregators — the
        experiment reporting tables, the pool — read from these snapshots.
        """
        with self._lock:
            return self.statistics.as_dict()

    @property
    def token(self) -> Optional[Hashable]:
        with self._lock:
            return self._token

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ---------------------------------------------------------------- tokens

    def ensure_token(self, token: Hashable) -> bool:
        """Bind the store to a data-version token; bump the epoch on change.

        Mirrors :meth:`~repro.service.matcache.MaterializationCache.ensure_token`,
        except that observations are *decayed* (via the epoch) instead of
        dropped: a cardinality measured against the old data is still a
        useful prior until fresh observations replace it.  Returns True when
        the token changed.
        """
        with self._lock:
            if self._token is None:
                self._token = token
                return False
            if self._token == token:
                return False
            self._token = token
            self._epoch += 1
            self.statistics.token_changes += 1
            return True

    # --------------------------------------------------------------- get/put

    def record(
        self,
        key: str,
        *,
        rows: float,
        bytes: float = 0.0,
        elapsed: Optional[float] = None,
    ) -> ObservedStats:
        """Fold one observation into the store and return the updated entry.

        An observation recorded after an epoch bump (the data changed since
        the entry's last observation) resets the moving averages to the new
        measurement — old-data numbers never average into new-data ones.

        ``elapsed=None`` means *no timing was measured* for this
        observation: the row/byte averages update but the elapsed EWMA is
        left untouched.  The serving layer uses this for plans that merely
        re-read a cached materialization — their near-zero wall time says
        nothing about what recomputing the node would cost, and folding it
        in would erode the measured benefit the cache policy scores with.
        """
        rows = max(float(rows), 0.0)
        bytes = max(float(bytes), 0.0)
        if elapsed is not None:
            elapsed = max(float(elapsed), 0.0)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.epoch != self._epoch:
                if entry is not None:
                    self.statistics.epoch_resets += 1
                entry = ObservedStats(
                    key=key,
                    observations=1,
                    rows=rows,
                    bytes=bytes,
                    elapsed=elapsed if elapsed is not None else 0.0,
                    last_rows=rows,
                    epoch=self._epoch,
                )
            else:
                a = self.ewma_alpha
                entry = replace(
                    entry,
                    observations=entry.observations + 1,
                    rows=a * rows + (1.0 - a) * entry.rows,
                    bytes=a * bytes + (1.0 - a) * entry.bytes,
                    elapsed=(
                        a * elapsed + (1.0 - a) * entry.elapsed
                        if elapsed is not None
                        else entry.elapsed
                    ),
                    last_rows=rows,
                )
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.statistics.records += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.statistics.evictions += 1
            return entry

    def get(self, key: str) -> Optional[ObservedStats]:
        """The observations for a fingerprint (immutable), or None."""
        with self._lock:
            return self._entries.get(key)

    # ------------------------------------------------------------ persistence

    def snapshot(self, path: Union[str, Path]) -> int:
        """Persist every observation (plus token and epoch) as JSON.

        Written atomically (temp file + ``os.replace``), so a crash
        mid-snapshot leaves the previous snapshot intact.  Returns how many
        entries were written.  Tokens are stored in a JSON-normalized form
        (tuples become lists); :meth:`restore` re-normalizes both sides
        before comparing, so any JSON-representable token round-trips.
        """
        path = Path(path)
        with self._lock:
            payload = {
                "kind": "repro-feedback-snapshot",
                "format": SNAPSHOT_FORMAT,
                "token": _json_token(self._token),
                "epoch": self._epoch,
                "ewma_alpha": self.ewma_alpha,
                "epoch_decay": self.epoch_decay,
                "entries": [
                    {
                        "key": entry.key,
                        "observations": entry.observations,
                        "rows": entry.rows,
                        "bytes": entry.bytes,
                        "elapsed": entry.elapsed,
                        "last_rows": entry.last_rows,
                        "epoch": entry.epoch,
                    }
                    for entry in self._entries.values()
                ],
            }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".feedback-tmp-", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            # repro-lint: disable=bare-except-swallow -- best-effort temp-file cleanup; the original snapshot error re-raises below
            except OSError:
                pass
            raise
        with self._lock:
            # Counted only once the file is durably in place: a failed
            # write must not report a snapshot that does not exist.
            self.statistics.snapshots_written += 1
        return len(payload["entries"])

    def restore(self, path: Union[str, Path]) -> int:
        """Re-seed the store from a :meth:`snapshot`; returns entries loaded.

        Token- and epoch-checked, mirroring :meth:`ensure_token`'s soft
        invalidation:

        * an **unbound** store adopts the snapshot's token, so entries
          arrive at full confidence — and a later ``ensure_token`` against
          the live data either confirms it (same data as the snapshotting
          process: nothing decays) or bumps the epoch (the data changed:
          everything restored decays into a prior),
        * a store already bound to a **different** token loads the entries
          one extra epoch behind — observations of other data are stale
          priors, never fresh measurements,
        * per-entry epoch *lags* are preserved, so an entry that was
          already stale when snapshotted stays exactly as stale.

        Keys already present in the store are kept (live observations beat
        snapshotted ones).  Raises :class:`SnapshotError` on a corrupt,
        truncated or mis-versioned file; callers doing best-effort recovery
        should treat that as "start empty", never as fatal.
        """
        path = Path(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"unreadable feedback snapshot {path}: {exc}") from None
        if not isinstance(raw, dict) or raw.get("kind") != "repro-feedback-snapshot":
            raise SnapshotError(f"{path} is not a feedback snapshot")
        if raw.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"unsupported feedback snapshot format {raw.get('format')!r}"
            )
        try:
            snap_token = _comparable_token(raw.get("token"))
            snap_epoch = int(raw["epoch"])
            entries = [
                ObservedStats(
                    key=str(item["key"]),
                    observations=int(item["observations"]),
                    rows=float(item["rows"]),
                    bytes=float(item["bytes"]),
                    elapsed=float(item["elapsed"]),
                    last_rows=float(item["last_rows"]),
                    epoch=int(item["epoch"]),
                )
                for item in raw["entries"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed feedback snapshot {path}: {exc}") from None
        with self._lock:
            extra_lag = 0
            if self._token is None:
                if snap_token is not None:
                    self._token = snap_token
            elif _comparable_token(self._token) != snap_token:
                extra_lag = 1
            restored = 0
            # Walk the snapshot newest-first and insert at the LRU end:
            # restored priors must never be fresher than *live* entries
            # (capacity pressure has to evict a snapshot entry before a
            # measurement this process actually took), while preserving the
            # snapshot's own recency order among themselves.
            for entry in reversed(entries):
                if entry.key in self._entries:
                    continue
                lag = max(snap_epoch - entry.epoch, 0) + extra_lag
                self._entries[entry.key] = replace(entry, epoch=self._epoch - lag)
                self._entries.move_to_end(entry.key, last=False)
                restored += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.statistics.evictions += 1
            self.statistics.entries_restored += restored
            return restored

    def confidence(self, key: str) -> float:
        """How much to trust the observations for ``key``, in [0, 1].

        Confidence grows with the number of observations —
        ``1 - (1 - alpha)^n`` — and decays geometrically with every epoch
        (data-version change) the entry lags behind the store.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.observations <= 0:
                return 0.0
            grown = 1.0 - (1.0 - self.ewma_alpha) ** entry.observations
            lag = self._epoch - entry.epoch
            if lag <= 0:
                return grown
            return grown * (self.epoch_decay ** lag)
