"""The memo: equivalence nodes (groups) and operator nodes (multi-expressions).

The memo is the compact AND-OR DAG of the Volcano framework: an *equivalence
node* (:class:`Group`) stands for all plans producing one result set, and an
*operator node* (:class:`MExpr`, a multi-expression) is one logical operator
whose inputs are other groups.  Groups are keyed by their semantic
fingerprint (:mod:`repro.dag.fingerprint`), which is what lets sub-plans
from different queries in a batch unify into shared nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..algebra.expressions import AggregateExpr, ColumnRef, Predicate
from .fingerprint import (
    AggregateSignature,
    FilterSignature,
    RelationSignature,
    Signature,
    SPJSignature,
)

__all__ = [
    "ScanMExpr",
    "SelectMExpr",
    "JoinMExpr",
    "AggregateMExpr",
    "MExpr",
    "mexpr_children",
    "Group",
    "Memo",
]


# ---------------------------------------------------------------------------
# Multi-expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScanMExpr:
    """A base-relation scan (a leaf operator node)."""

    table: str
    alias: str

    def describe(self) -> str:
        return f"scan({self.table})" if self.table == self.alias else f"scan({self.table} AS {self.alias})"


@dataclass(frozen=True)
class SelectMExpr:
    """A selection applied on top of a child group."""

    predicate: Predicate
    child: int

    def describe(self) -> str:
        return f"σ[{self.predicate}](G{self.child})"


@dataclass(frozen=True)
class JoinMExpr:
    """An inner join of two child groups (``predicate`` may be ``None`` = cross).

    ``left_aliases`` / ``right_aliases`` record which block-level source
    aliases each operand covers; the physical optimizer uses them to assign
    equi-join columns to the correct side (the child group's own aliases are
    not sufficient when an operand is a derived table referenced under a
    different alias).
    """

    predicate: Optional[Predicate]
    left: int
    right: int
    left_aliases: FrozenSet[str] = frozenset()
    right_aliases: FrozenSet[str] = frozenset()

    def describe(self) -> str:
        pred = str(self.predicate) if self.predicate is not None else "⨯"
        return f"join[{pred}](G{self.left}, G{self.right})"


@dataclass(frozen=True)
class AggregateMExpr:
    """Grouping/aggregation applied on top of a child group."""

    group_by: Tuple[ColumnRef, ...]
    aggregates: Tuple[AggregateExpr, ...]
    child: int

    def describe(self) -> str:
        keys = ", ".join(str(c) for c in self.group_by) or "()"
        return f"γ[{keys}](G{self.child})"


MExpr = Union[ScanMExpr, SelectMExpr, JoinMExpr, AggregateMExpr]


def mexpr_children(mexpr: MExpr) -> Tuple[int, ...]:
    """The child group ids of a multi-expression."""
    if isinstance(mexpr, ScanMExpr):
        return ()
    if isinstance(mexpr, SelectMExpr):
        return (mexpr.child,)
    if isinstance(mexpr, JoinMExpr):
        return (mexpr.left, mexpr.right)
    if isinstance(mexpr, AggregateMExpr):
        return (mexpr.child,)
    raise TypeError(f"unknown multi-expression type: {type(mexpr).__name__}")


# ---------------------------------------------------------------------------
# Groups
# ---------------------------------------------------------------------------


@dataclass
class Group:
    """An equivalence node: all plans producing one result set.

    Attributes:
        id: dense integer id within the memo.
        signature: the semantic fingerprint identifying the group.
        mexprs: the alternative logical operator nodes rooted at this group.
        rows / row_width: estimated output cardinality and row width (bytes),
            filled in by the DAG builder.
        aliases: the source aliases contributing to this group's result
            (used to split join predicates between operands).
        expanded: whether join reordering has already been applied.
        derived: the group was manufactured by the subsumption pass (a
            common-subexpression or relaxed ``p1 ∨ p2`` group) rather than
            built from a submitted query.  The pass never pairs two derived
            groups with each other — relaxing relaxations compounds the
            memo quadratically without adding sharing for any real query.
    """

    id: int
    signature: Signature
    mexprs: List[MExpr] = field(default_factory=list)
    rows: float = 0.0
    row_width: float = 0.0
    aliases: FrozenSet[str] = frozenset()
    expanded: bool = False
    derived: bool = False
    _mexpr_set: Set[MExpr] = field(default_factory=set, repr=False)

    @property
    def is_relation(self) -> bool:
        return isinstance(self.signature, RelationSignature)

    @property
    def output_bytes(self) -> float:
        return max(self.rows, 1.0) * max(self.row_width, 1.0)

    def describe(self) -> str:
        return f"G{self.id}: {self.signature.describe()}"


class Memo:
    """The shared store of groups, keyed by signature.

    The memo supports *incremental* growth: new queries can be folded into
    an existing memo at any time (their sub-expressions unify with prior
    groups through the signature index), and :attr:`version` is bumped on
    every structural mutation so long-lived consumers can detect growth
    cheaply.

    Subsumption derivations — the σ-alternatives added between same-source
    groups after the fact — carry *provenance*: the pair of groups whose
    comparison induced them.  A derivation is only a valid alternative for
    a batch whose own (structural) DAG contains both groups of at least one
    inducing pair; this is what lets many batches share one memo while each
    batch is optimized exactly as if its DAG had been built fresh.
    """

    _uid_counter = itertools.count(1)

    def __init__(self) -> None:
        self._groups: List[Group] = []
        self._by_signature: Dict[Signature, int] = {}
        self._derivations: Dict[Tuple[int, MExpr], Tuple[FrozenSet[int], ...]] = {}
        self._version = 0
        self._uid = next(Memo._uid_counter)

    @property
    def version(self) -> int:
        """Monotone counter bumped whenever a group or multi-expression is added."""
        return self._version

    @property
    def uid(self) -> int:
        """A process-unique identity for this memo instance.

        Group ids are only meaningful relative to one memo; results that
        carry group ids record the memo's uid so downstream consumers (e.g.
        the session executor) can refuse ids minted against a different
        memo instead of resolving them to unrelated groups.
        """
        return self._uid

    # -- group management --------------------------------------------------

    def group_for(self, signature: Signature) -> Group:
        """Return the group with this signature, creating it if necessary."""
        existing = self._by_signature.get(signature)
        if existing is not None:
            return self._groups[existing]
        group = Group(id=len(self._groups), signature=signature)
        self._groups.append(group)
        self._by_signature[signature] = group.id
        self._version += 1
        return group

    def find(self, signature: Signature) -> Optional[Group]:
        index = self._by_signature.get(signature)
        return self._groups[index] if index is not None else None

    def get(self, group_id: int) -> Group:
        return self._groups[group_id]

    def signature_of(self, group_id: int) -> Signature:
        """The semantic fingerprint of a group (stable node→fingerprint lookup).

        Group ids are memo-local (they depend on interning order), but the
        signature returned here identifies the group's result set across
        memos and sessions; caches that must outlive one memo key on it.
        """
        return self._groups[group_id].signature

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[Group]:
        return iter(self._groups)

    # -- multi-expressions --------------------------------------------------

    def add_mexpr(self, group: Union[Group, int], mexpr: MExpr) -> bool:
        """Add a structural multi-expression to a group; False if already present.

        A duplicate that was recorded as a subsumption derivation keeps its
        derivation classification: an expression's structural/derivation
        status is immutable once set, so a batch's active scope can never
        change after it was computed.  (The builder cannot actually produce
        this case — structural expressions are only added while a group is
        first expanded, and derivations only target already-expanded
        groups — the invariant just makes that explicit.)
        """
        target = group if isinstance(group, Group) else self.get(group)
        if mexpr in target._mexpr_set:
            return False
        for child in mexpr_children(mexpr):
            if child == target.id:
                raise ValueError("a multi-expression cannot reference its own group")
            if not 0 <= child < len(self._groups):
                raise ValueError(f"unknown child group G{child}")
        target._mexpr_set.add(mexpr)
        target.mexprs.append(mexpr)
        self._version += 1
        return True

    def add_derivation(
        self, group: Union[Group, int], mexpr: MExpr, pair: Iterable[int]
    ) -> bool:
        """Add a subsumption derivation induced by comparing the groups of ``pair``.

        Returns True when the expression is new to the group.  The inducing
        pair is recorded (accumulating when the same derivation is induced by
        several pairs) unless the expression already exists structurally.
        """
        target = group if isinstance(group, Group) else self.get(group)
        key = (target.id, mexpr)
        if mexpr in target._mexpr_set:
            if key in self._derivations:
                pairs = self._derivations[key]
                new_pair = frozenset(pair)
                if new_pair not in pairs:
                    self._derivations[key] = pairs + (new_pair,)
            return False
        added = self.add_mexpr(target, mexpr)
        self._derivations[key] = (frozenset(pair),)
        return added

    def derivation_pairs(self, group_id: int, mexpr: MExpr) -> Tuple[FrozenSet[int], ...]:
        """The inducing pairs of a derivation; empty for structural expressions."""
        return self._derivations.get((group_id, mexpr), ())

    def is_derivation(self, group_id: int, mexpr: MExpr) -> bool:
        return (group_id, mexpr) in self._derivations

    def mexpr_count(self) -> int:
        return sum(len(g.mexprs) for g in self._groups)

    # -- structure ----------------------------------------------------------

    def parents(self) -> Dict[int, FrozenSet[int]]:
        """Map from group id to the ids of groups with an operator consuming it."""
        result: Dict[int, Set[int]] = {g.id: set() for g in self._groups}
        for group in self._groups:
            for mexpr in group.mexprs:
                for child in mexpr_children(mexpr):
                    result[child].add(group.id)
        return {gid: frozenset(parents) for gid, parents in result.items()}

    def reachable_from(self, roots: Union[int, Tuple[int, ...], List[int]]) -> FrozenSet[int]:
        """All group ids reachable (through any alternative) from the given roots."""
        if isinstance(roots, int):
            roots = (roots,)
        seen: Set[int] = set()
        stack = list(roots)
        while stack:
            gid = stack.pop()
            if gid in seen:
                continue
            seen.add(gid)
            for mexpr in self.get(gid).mexprs:
                for child in mexpr_children(mexpr):
                    if child not in seen:
                        stack.append(child)
        return frozenset(seen)

    def stats(self) -> Dict[str, int]:
        """Simple size statistics (useful in experiment reports)."""
        return {
            "groups": len(self._groups),
            "mexprs": self.mexpr_count(),
            "relations": sum(1 for g in self._groups if g.is_relation),
        }
