"""``stats-snapshot`` — statistics aggregated field-by-field off a live view.

Since PR 8 every serving statistics object is a *live view* over a shared
:class:`~repro.obs.MetricsRegistry`: reading two fields of
``session.statistics`` one after the other can observe a torn multi-counter
state (a fill counted whose eviction is not) when the owner mutates them
concurrently.  Consistent multi-field reads go through the owner's
``statistics_snapshot()``, which copies every field under the component
lock.

The checker flags, per function and unless the access is lexically inside a
``with self.<...>_lock:`` block or in a ``*_locked`` /
``statistics_snapshot`` method (where the lock is held by contract):

* ``<expr>.statistics.as_dict()`` — a multi-field copy off the live view;
* ``getattr(<expr>.statistics, name)`` — the dynamic-aggregation loop shape
  that tore in the pool before PR 8;
* two or more *distinct* fields of the same ``<expr>.statistics`` read in
  one function — single-field reads cannot tear and stay legal.

Only *reads* (Load context) count toward the multi-field rule: the owner
incrementing two counters (``self.statistics.hits += 1``) is the mutation
the rule protects readers *from*, not an instance of the hazard.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from ..visitor import Checker, ModuleContext, register_checker

__all__ = ["StatsSnapshotChecker"]

_EXEMPT_METHODS = {"statistics_snapshot"}


def _is_statistics_chain(node: ast.AST) -> bool:
    """Whether ``node`` is an expression ending in ``.statistics``."""
    return isinstance(node, ast.Attribute) and node.attr == "statistics"


def _base_key(node: ast.Attribute) -> str:
    """A stable identity for the expression owning ``.statistics``."""
    return ast.dump(node.value)


@register_checker
class StatsSnapshotChecker(Checker):
    id = "stats-snapshot"
    rationale = (
        "statistics objects are live views over a shared registry; "
        "aggregating several fields (or as_dict()/getattr loops) off them "
        "without the owner's lock reads a torn multi-counter state — use "
        "statistics_snapshot()"
    )

    def check(self, module: ModuleContext):
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(self, module: ModuleContext, func):
        if func.name in _EXEMPT_METHODS or func.name.endswith("_locked"):
            return
        #: distinct fields read per `.statistics` base expression (unlocked).
        fields_seen: Dict[str, Set[str]] = {}
        flagged_bases: Set[str] = set()
        findings: List[Tuple[int, int, ast.AST, str]] = []

        def walk(node: ast.AST, locked: bool, top: bool) -> None:
            if not top and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return  # nested scopes are their own functions
            if isinstance(node, (ast.With, ast.AsyncWith)):
                takes_lock = any(
                    _is_self_lock(item.context_expr) for item in node.items
                )
                for item in node.items:
                    walk(item.context_expr, locked, False)
                for child in node.body:
                    walk(child, locked or takes_lock, False)
                return
            if not locked:
                self._inspect(node, fields_seen, flagged_bases, findings)
            for child in ast.iter_child_nodes(node):
                walk(child, locked, False)

        walk(func, False, True)
        for line, col, node, message in sorted(
            findings, key=lambda item: (item[0], item[1])
        ):
            yield self.finding(module, node, message)

    def _inspect(
        self,
        node: ast.AST,
        fields_seen: Dict[str, Set[str]],
        flagged_bases: Set[str],
        findings: List[Tuple[int, int, ast.AST, str]],
    ) -> None:
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "as_dict"
                and _is_statistics_chain(func.value)
            ):
                findings.append(
                    (
                        node.lineno,
                        node.col_offset,
                        node,
                        "as_dict() on a live statistics view copies its "
                        "fields one by one without the owner's lock; use "
                        "statistics_snapshot() (or hold the lock)",
                    )
                )
                return
            if (
                isinstance(func, ast.Name)
                and func.id == "getattr"
                and node.args
                and _is_statistics_chain(node.args[0])
            ):
                findings.append(
                    (
                        node.lineno,
                        node.col_offset,
                        node,
                        "getattr-loop aggregation over a live statistics "
                        "view tears against concurrent counter updates; "
                        "aggregate from statistics_snapshot() instead",
                    )
                )
                return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and _is_statistics_chain(node.value)
        ):
            base = _base_key(node.value)
            seen = fields_seen.setdefault(base, set())
            seen.add(node.attr)
            if len(seen) >= 2 and base not in flagged_bases:
                flagged_bases.add(base)
                findings.append(
                    (
                        node.lineno,
                        node.col_offset,
                        node,
                        f"second field ({node.attr!r}) of the same live "
                        "statistics view read in this function; a "
                        "multi-field read can tear — take one "
                        "statistics_snapshot() and read from it",
                    )
                )


def _is_self_lock(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr.endswith("_lock")
    )
