"""Workloads: the paper's TPCD queries/batches plus synthetic generators."""

from .tpcd_queries import (
    batched_queries,
    q2_batch,
    q2_decorrelated,
    q3,
    q5,
    q7,
    q8,
    q9,
    q10,
    q11,
    q15,
    standalone_workloads,
)
from .batches import COMPOSITE_BATCH_NAMES, all_composite_batches, composite_batch
from .synthetic import (
    drifting_star_database,
    example1_batch,
    example1_catalog,
    random_star_batch,
    random_star_query,
    star_schema_catalog,
    star_schema_database,
)

__all__ = [
    "batched_queries",
    "q2_batch",
    "q2_decorrelated",
    "q3",
    "q5",
    "q7",
    "q8",
    "q9",
    "q10",
    "q11",
    "q15",
    "standalone_workloads",
    "COMPOSITE_BATCH_NAMES",
    "all_composite_batches",
    "composite_batch",
    "drifting_star_database",
    "example1_batch",
    "example1_catalog",
    "random_star_batch",
    "random_star_query",
    "star_schema_catalog",
    "star_schema_database",
]
