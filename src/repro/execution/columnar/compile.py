"""Predicate compilation: one resolution pass, then tight selection loops.

The row executor re-resolves every column reference and re-dispatches on the
predicate's type for **every row** (:func:`~repro.execution.evaluate
.evaluate_predicate`).  This module does both exactly once per batch:
column references are resolved against the batch's schema up front, and each
predicate node becomes one list comprehension over a **selection vector**
(a list of passing row indices) — conjuncts narrow the vector in sequence,
so later conjuncts only touch rows that survived earlier ones, which is the
same set of evaluations the row executor's short-circuiting ``and`` does.

Null and error semantics are the row executor's, bit for bit:

* a comparison with ``None`` on either side is false (never an error);
* a reference to a column the batch does not have raises
  :class:`~repro.execution.evaluate.ColumnNotFound` (the row executor
  raises it from ``resolve_column``); a reference to a column a *specific
  row* is missing (validity mask false) raises the same — but only if the
  evaluation actually reaches that row, mirroring per-row short-circuiting;
* mixed-type comparisons raise whatever Python raises (``TypeError`` for
  ``"a" < 1``), exactly as the interpreter would.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...algebra.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    ComparisonOp,
    InList,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from ..evaluate import ColumnNotFound
from .batch import ColumnBatch

__all__ = ["filter_indices"]

import operator as _op

_COMPARATORS = {
    ComparisonOp.EQ: _op.eq,
    ComparisonOp.NE: _op.ne,
    ComparisonOp.LT: _op.lt,
    ComparisonOp.LE: _op.le,
    ComparisonOp.GT: _op.gt,
    ComparisonOp.GE: _op.ge,
}


def _column(batch: ColumnBatch, ref: ColumnRef, candidates: Sequence[int]) -> List[object]:
    """The resolved value list of a reference, presence-checked for ``candidates``.

    A row the column's key is missing from would make the row executor raise
    :class:`ColumnNotFound` the moment it evaluates that row — so raise
    here, but only for rows the evaluation actually reaches.
    """
    name = batch.resolve(ref)
    mask = batch.mask(name)
    if mask is not None:
        for i in candidates:
            if not mask[i]:
                raise ColumnNotFound(
                    f"column {ref} not found in row {i} of batch"
                )
    return batch.column(name)


def filter_indices(
    batch: ColumnBatch,
    predicate: Optional[Predicate],
    candidates: Optional[Sequence[int]] = None,
) -> List[int]:
    """The row indices of ``batch`` satisfying ``predicate``, in row order.

    ``candidates`` restricts evaluation to a subset of rows (the selection
    vector being narrowed); ``None`` means every row.  ``None`` and
    ``TruePredicate`` select everything.
    """
    if candidates is None:
        candidates = list(range(batch.length))
    if predicate is None or isinstance(predicate, TruePredicate):
        return list(candidates)
    if isinstance(predicate, Comparison):
        cmp = _COMPARATORS[predicate.op]
        left = _column(batch, predicate.left, candidates)
        if isinstance(predicate.right, ColumnRef):
            right = _column(batch, predicate.right, candidates)
            return [
                i
                for i in candidates
                if left[i] is not None
                and right[i] is not None
                and cmp(left[i], right[i])
            ]
        value = predicate.right.value
        if value is None:  # a None literal never compares true (row semantics)
            return []
        return [i for i in candidates if left[i] is not None and cmp(left[i], value)]
    if isinstance(predicate, Between):
        values = _column(batch, predicate.column, candidates)
        low = predicate.low.value
        high = predicate.high.value
        return [
            i
            for i in candidates
            if values[i] is not None and low <= values[i] <= high
        ]
    if isinstance(predicate, InList):
        values = _column(batch, predicate.column, candidates)
        # A tuple, not a set: membership then means `value == literal` scans,
        # which is exactly the interpreter's any() — sets would additionally
        # require hashability the row executor never asked for.
        wanted = tuple(literal.value for literal in predicate.values)
        return [i for i in candidates if values[i] in wanted]
    if isinstance(predicate, And):
        selected = list(candidates)
        for operand in predicate.operands:
            if not selected:
                break
            selected = filter_indices(batch, operand, selected)
        return selected
    if isinstance(predicate, Or):
        # Mirror any()'s short-circuit: each operand only sees rows no
        # earlier operand matched, so the set of (row, operand) evaluations
        # is identical to the interpreter's — then restore row order.
        remaining = list(candidates)
        matched: List[int] = []
        for operand in predicate.operands:
            if not remaining:
                break
            hits = filter_indices(batch, operand, remaining)
            matched.extend(hits)
            if hits:
                dropped = set(hits)
                remaining = [i for i in remaining if i not in dropped]
        matched.sort()
        return matched
    if isinstance(predicate, Not):
        hits = set(filter_indices(batch, predicate.operand, candidates))
        return [i for i in candidates if i not in hits]
    raise TypeError(f"cannot evaluate predicate of type {type(predicate).__name__}")
