"""Experiment 1: batched TPCD queries (Figure 4 of the paper).

For the composite batches BQ1–BQ6 (Q3, Q5, Q7, Q8, Q9, Q10 each repeated
twice with different selection constants) and for both database scales
(1GB and 100GB), the experiment reports

* the estimated cost of the consolidated plan produced by plain Volcano
  (no MQO), Greedy and MarginalGreedy  (Figures 4a and 4b),
* the number of nodes each algorithm chose to materialize (the numbers on
  top of the bars in the paper's figures), and
* the optimization time of each algorithm (Figure 4c).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..catalog.tpcd import tpcd_catalog
from ..cost.model import CostModel, CostParameters
from ..service.session import OptimizerSession
from ..workloads.batches import COMPOSITE_BATCH_NAMES, composite_batch
from .reporting import ResultTable

__all__ = ["Experiment1Row", "Experiment1Results", "run_experiment1", "DEFAULT_STRATEGIES"]

DEFAULT_STRATEGIES: Tuple[str, ...] = ("volcano", "greedy", "marginal-greedy")


@dataclass(frozen=True)
class Experiment1Row:
    """One (batch, scale, strategy) measurement."""

    batch: str
    scale_factor: float
    strategy: str
    estimated_cost_s: float
    volcano_cost_s: float
    materialized_nodes: int
    optimization_time_s: float
    best_cost_calls: int

    @property
    def improvement(self) -> float:
        if self.volcano_cost_s <= 0:
            return 0.0
        return 1.0 - self.estimated_cost_s / self.volcano_cost_s


@dataclass
class Experiment1Results:
    """All measurements plus the figure-by-figure views."""

    rows: List[Experiment1Row] = field(default_factory=list)

    def _scale_rows(self, scale_factor: float) -> List[Experiment1Row]:
        return [r for r in self.rows if r.scale_factor == scale_factor]

    def _cost_table(self, scale_factor: float, title: str) -> ResultTable:
        strategies = sorted({r.strategy for r in self._scale_rows(scale_factor)},
                            key=lambda s: DEFAULT_STRATEGIES.index(s) if s in DEFAULT_STRATEGIES else 99)
        columns = ["batch"]
        for strategy in strategies:
            columns.append(f"{strategy} cost (s)")
            if strategy != "volcano":
                columns.append(f"{strategy} #mat")
        table = ResultTable(title, columns)
        batches = sorted({r.batch for r in self._scale_rows(scale_factor)})
        for batch in batches:
            cells: List = [batch]
            for strategy in strategies:
                row = self._find(batch, scale_factor, strategy)
                cells.append(row.estimated_cost_s if row else None)
                if strategy != "volcano":
                    cells.append(row.materialized_nodes if row else None)
            table.add_row(*cells)
        table.notes = (
            "Estimated consolidated-plan cost (seconds of the paper's resource-"
            "consumption cost model); #mat is the number of materialized nodes."
        )
        return table

    def figure_4a(self) -> ResultTable:
        """Figure 4a: estimated costs for the 1GB database."""
        return self._cost_table(1.0, "Figure 4a — Batched TPCD queries, 1GB total size")

    def figure_4b(self) -> ResultTable:
        """Figure 4b: estimated costs for the 100GB database."""
        return self._cost_table(100.0, "Figure 4b — Batched TPCD queries, 100GB total size")

    def figure_4c(self) -> ResultTable:
        """Figure 4c: optimization times (the paper plots these in logscale)."""
        strategies = sorted({r.strategy for r in self.rows},
                            key=lambda s: DEFAULT_STRATEGIES.index(s) if s in DEFAULT_STRATEGIES else 99)
        scale = min({r.scale_factor for r in self.rows}) if self.rows else 1.0
        table = ResultTable(
            "Figure 4c — Optimization time (seconds)",
            ["batch"] + [f"{s} opt time (s)" for s in strategies],
        )
        for batch in sorted({r.batch for r in self.rows}):
            cells: List = [batch]
            for strategy in strategies:
                row = self._find(batch, scale, strategy)
                cells.append(row.optimization_time_s if row else None)
            table.add_row(*cells)
        table.notes = "Optimization (CPU) time of the materialization-selection phase."
        return table

    def tables(self) -> List[ResultTable]:
        result = []
        if self._scale_rows(1.0):
            result.append(self.figure_4a())
        if self._scale_rows(100.0):
            result.append(self.figure_4b())
        if self.rows:
            result.append(self.figure_4c())
        return result

    def _find(self, batch: str, scale: float, strategy: str) -> Optional[Experiment1Row]:
        for row in self.rows:
            if row.batch == batch and row.scale_factor == scale and row.strategy == strategy:
                return row
        return None


def run_experiment1(
    *,
    scale_factors: Sequence[float] = (1.0, 100.0),
    max_batches: int = 6,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    cost_parameters: Optional[CostParameters] = None,
    lazy: bool = True,
    verbose: bool = False,
) -> Experiment1Results:
    """Run Experiment 1 and return the per-figure result tables.

    Args:
        scale_factors: database scales to evaluate (1 = 1GB, 100 = 100GB).
        max_batches: how many composite batches to run (6 = BQ1 … BQ6).
        strategies: the strategies to compare.
        cost_parameters: optional override of the cost-model calibration
            (e.g. ``CostParameters().with_memory(128 * 1024 * 1024)``).
        lazy: use the lazy (heap-accelerated) greedy variants.
        verbose: print each measurement as it is produced.
    """
    results = Experiment1Results()
    for scale in scale_factors:
        catalog = tpcd_catalog(scale)
        cost_model = CostModel(cost_parameters if cost_parameters is not None else CostParameters())
        # One serving session per strategy: the composite batches BQ1 ⊂ BQ2 ⊂ …
        # overlap heavily, so each batch only pays for its new queries, while
        # the reported optimization times stay per-strategy (a shared session
        # would let one strategy's warm bestCost caches speed up the next).
        sessions = {s: OptimizerSession(catalog, cost_model) for s in strategies}
        for index in range(1, max_batches + 1):
            batch = composite_batch(index)
            for strategy in strategies:
                result = sessions[strategy].optimize(batch, strategy=strategy, lazy=lazy)
                row = Experiment1Row(
                    batch=batch.name,
                    scale_factor=float(scale),
                    strategy=strategy,
                    estimated_cost_s=result.total_cost / 1000.0,
                    volcano_cost_s=result.volcano_cost / 1000.0,
                    materialized_nodes=result.materialized_count,
                    optimization_time_s=result.optimization_time,
                    best_cost_calls=result.oracle_calls,
                )
                results.rows.append(row)
                if verbose:
                    print(
                        f"[experiment1] scale={scale:g} {batch.name} {strategy:16s} "
                        f"cost={row.estimated_cost_s:10.1f}s mat={row.materialized_nodes:3d} "
                        f"opt={row.optimization_time_s:6.2f}s"
                    )
    return results
