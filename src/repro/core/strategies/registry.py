"""The strategy registry: names → strategy classes.

The registry is the single source of truth for which strategies exist:
``repro.core.mqo.STRATEGIES`` is derived from it, the
:class:`~repro.core.mqo.MultiQueryOptimizer` facade and the serving layer
dispatch through it, and third-party code extends the system by decorating a
:class:`~repro.core.strategies.base.Strategy` subclass with
:func:`register_strategy` — no core module needs to change.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple, Type, Union

from .base import Strategy

__all__ = [
    "register_strategy",
    "unregister_strategy",
    "available_strategies",
    "get_strategy",
    "resolve_strategy",
]

_REGISTRY: "OrderedDict[str, Type[Strategy]]" = OrderedDict()
_INSTANCES: Dict[str, Strategy] = {}


def register_strategy(
    cls: Optional[Type[Strategy]] = None, *, name: Optional[str] = None
) -> Union[Type[Strategy], Callable[[Type[Strategy]], Type[Strategy]]]:
    """Class decorator registering a strategy under its (unique) name.

    Usable bare (``@register_strategy``, taking the name from the class's
    ``name`` attribute) or with an explicit name
    (``@register_strategy(name="my-strategy")``).
    """

    def decorate(klass: Type[Strategy]) -> Type[Strategy]:
        key = name or getattr(klass, "name", "")
        if not key:
            raise ValueError(
                f"strategy class {klass.__name__} needs a non-empty 'name' "
                "attribute (or pass register_strategy(name=...))"
            )
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not klass:
            raise ValueError(
                f"strategy name {key!r} is already registered by {existing.__name__}"
            )
        klass.name = key
        _REGISTRY[key] = klass
        _INSTANCES.pop(key, None)
        return klass

    if cls is not None:
        return decorate(cls)
    return decorate


def unregister_strategy(name: str) -> Optional[Type[Strategy]]:
    """Remove a strategy from the registry (mainly for tests/plugins)."""
    _INSTANCES.pop(name, None)
    return _REGISTRY.pop(name, None)


def available_strategies() -> Tuple[str, ...]:
    """All registered strategy names, in registration order."""
    return tuple(_REGISTRY)


def get_strategy(name: str) -> Type[Strategy]:
    """The strategy class registered under ``name``.

    Raises:
        ValueError: with the list of valid names, when unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose one of {available_strategies()}"
        ) from None


def resolve_strategy(spec: Union[str, Strategy, Type[Strategy]]) -> Strategy:
    """Normalize a strategy spec (name, class or instance) to an instance.

    Instances resolved by name are cached — strategies are stateless, so one
    instance per registered class serves every batch.
    """
    if isinstance(spec, Strategy):
        return spec
    if isinstance(spec, type) and issubclass(spec, Strategy):
        return spec()
    instance = _INSTANCES.get(spec)
    if instance is None:
        instance = get_strategy(spec)()
        _INSTANCES[spec] = instance
    return instance
