"""Cardinality and selectivity estimation.

Standard System-R style estimates driven by the catalog statistics:

* equality against a literal: ``1 / V(column)``,
* equality between two columns (join predicate): ``1 / max(V(a), V(b))``,
* range predicates: interpolated from the column's min/max bounds (default
  1/3 when bounds are unknown),
* conjunctions multiply, disjunctions use inclusion–exclusion under
  independence.

The estimator resolves a (possibly alias-qualified) column to the table that
provides it via a :class:`ColumnResolver`; derived sources (aggregation
blocks) expose their row count as the distinct count of their output
columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Protocol, Tuple

from ..algebra.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    ComparisonOp,
    InList,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from ..catalog.catalog import Catalog

__all__ = [
    "DEFAULT_EQUALITY_SELECTIVITY",
    "DEFAULT_RANGE_SELECTIVITY",
    "ColumnInfo",
    "ColumnResolver",
    "CatalogResolver",
    "SelectivityEstimator",
]

#: Fallbacks when no statistics are available.
DEFAULT_EQUALITY_SELECTIVITY = 0.01
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
#: Floor applied to composite selectivities purely to avoid returning 0.0;
#: it must stay far below the product of the join selectivities of a large
#: multi-way join (clamping too early silently inflates cardinalities).
MIN_SELECTIVITY = 1e-300


@dataclass(frozen=True)
class ColumnInfo:
    """Everything the estimator needs to know about one column."""

    distinct: float
    min_value: Optional[float] = None
    max_value: Optional[float] = None

    @property
    def value_range(self) -> Optional[float]:
        if self.min_value is None or self.max_value is None:
            return None
        return max(self.max_value - self.min_value, 0.0)


class ColumnResolver(Protocol):
    """Resolves a column reference to its statistics (or ``None`` if unknown)."""

    def resolve(self, column: ColumnRef) -> Optional[ColumnInfo]:  # pragma: no cover
        ...


class CatalogResolver:
    """A resolver backed by the catalog plus an alias → table/derived mapping.

    Args:
        catalog: the catalog with base-table statistics.
        alias_tables: mapping from source alias to base table name.
        derived_rows: mapping from derived-source alias to its estimated row
            count (its columns get that as a distinct count).
    """

    def __init__(
        self,
        catalog: Catalog,
        alias_tables: Optional[Mapping[str, str]] = None,
        derived_rows: Optional[Mapping[str, float]] = None,
    ):
        self._catalog = catalog
        self._alias_tables = dict(alias_tables if alias_tables is not None else {})
        self._derived_rows = dict(derived_rows if derived_rows is not None else {})

    def resolve(self, column: ColumnRef) -> Optional[ColumnInfo]:
        table_name = None
        if column.qualifier is not None:
            if column.qualifier in self._derived_rows:
                rows = max(self._derived_rows[column.qualifier], 1.0)
                return ColumnInfo(distinct=rows)
            table_name = self._alias_tables.get(column.qualifier, column.qualifier)
            if not self._catalog.has_table(table_name):
                table_name = None
        if table_name is None:
            table_name = self._catalog.find_table_for_column(column.name)
        if table_name is None:
            return None
        stats = self._catalog.table_statistics(table_name)
        column_stats = stats.column(column.name)
        if column_stats is None:
            if not self._catalog.table(table_name).has_column(column.name):
                return None
            return ColumnInfo(distinct=max(stats.row_count, 1.0))
        return ColumnInfo(
            distinct=min(column_stats.distinct_count, max(stats.row_count, 1.0)),
            min_value=column_stats.min_value,
            max_value=column_stats.max_value,
        )


class SelectivityEstimator:
    """Estimates predicate selectivities and operator output cardinalities."""

    def __init__(self, resolver: ColumnResolver):
        self._resolver = resolver

    # -- public API ---------------------------------------------------------

    def selectivity(self, predicate: Optional[Predicate]) -> float:
        """The fraction of input rows satisfying ``predicate`` (1.0 for None/TRUE)."""
        if predicate is None or isinstance(predicate, TruePredicate):
            return 1.0
        value = self._selectivity(predicate)
        return min(max(value, MIN_SELECTIVITY), 1.0)

    def join_cardinality(
        self, left_rows: float, right_rows: float, predicate: Optional[Predicate]
    ) -> float:
        """Output cardinality of an (inner) join."""
        cross = max(left_rows, 0.0) * max(right_rows, 0.0)
        return max(cross * self.selectivity(predicate), 1.0)

    def select_cardinality(self, input_rows: float, predicate: Optional[Predicate]) -> float:
        return max(input_rows * self.selectivity(predicate), 1.0)

    def group_cardinality(self, input_rows: float, group_by: Tuple[ColumnRef, ...]) -> float:
        """Number of groups produced by grouping on ``group_by``."""
        if not group_by:
            return 1.0
        product = 1.0
        for column in group_by:
            info = self._resolver.resolve(column)
            distinct = info.distinct if info is not None else max(input_rows, 1.0)
            product *= max(distinct, 1.0)
            if product > input_rows:
                break
        # Cap by the input size (can't have more groups than rows) and apply
        # the usual attenuation for multi-column grouping.
        return max(min(product, max(input_rows, 1.0)), 1.0)

    def distinct(self, column: ColumnRef, default: float = 1000.0) -> float:
        info = self._resolver.resolve(column)
        return info.distinct if info is not None else default

    # -- internals ------------------------------------------------------------

    def _selectivity(self, predicate: Predicate) -> float:
        if isinstance(predicate, Comparison):
            return self._comparison(predicate)
        if isinstance(predicate, Between):
            return self._between(predicate)
        if isinstance(predicate, InList):
            info = self._resolver.resolve(predicate.column)
            distinct = info.distinct if info else 1.0 / DEFAULT_EQUALITY_SELECTIVITY
            return min(len(predicate.values) / max(distinct, 1.0), 1.0)
        if isinstance(predicate, And):
            result = 1.0
            for operand in predicate.operands:
                result *= self._selectivity(operand)
            return result
        if isinstance(predicate, Or):
            miss = 1.0
            for operand in predicate.operands:
                miss *= 1.0 - min(self._selectivity(operand), 1.0)
            return 1.0 - miss
        if isinstance(predicate, Not):
            return 1.0 - self._selectivity(predicate.operand)
        if isinstance(predicate, TruePredicate):
            return 1.0
        raise TypeError(f"unknown predicate type: {type(predicate).__name__}")

    def _comparison(self, predicate: Comparison) -> float:
        left_info = self._resolver.resolve(predicate.left)
        if isinstance(predicate.right, ColumnRef):
            right_info = self._resolver.resolve(predicate.right)
            left_distinct = left_info.distinct if left_info else 1.0
            right_distinct = right_info.distinct if right_info else 1.0
            if predicate.op is ComparisonOp.EQ:
                return 1.0 / max(left_distinct, right_distinct, 1.0)
            if predicate.op is ComparisonOp.NE:
                return 1.0 - 1.0 / max(left_distinct, right_distinct, 1.0)
            return DEFAULT_RANGE_SELECTIVITY
        literal: Literal = predicate.right
        if predicate.op is ComparisonOp.EQ:
            if left_info is None:
                return DEFAULT_EQUALITY_SELECTIVITY
            return 1.0 / max(left_info.distinct, 1.0)
        if predicate.op is ComparisonOp.NE:
            if left_info is None:
                return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
            return 1.0 - 1.0 / max(left_info.distinct, 1.0)
        return self._range_fraction(left_info, predicate.op, literal)

    def _range_fraction(
        self, info: Optional[ColumnInfo], op: ComparisonOp, literal: Literal
    ) -> float:
        value = literal.numeric
        if info is None or value is None or info.value_range in (None, 0.0):
            return DEFAULT_RANGE_SELECTIVITY
        low, high = info.min_value, info.max_value
        span = info.value_range
        if op in (ComparisonOp.LT, ComparisonOp.LE):
            fraction = (value - low) / span
        else:  # GT, GE
            fraction = (high - value) / span
        return min(max(fraction, 0.0), 1.0)

    def _between(self, predicate: Between) -> float:
        info = self._resolver.resolve(predicate.column)
        low = predicate.low.numeric
        high = predicate.high.numeric
        if info is None or low is None or high is None or info.value_range in (None, 0.0):
            return DEFAULT_RANGE_SELECTIVITY * 0.75
        fraction = (min(high, info.max_value) - max(low, info.min_value)) / info.value_range
        return min(max(fraction, 0.0), 1.0)
