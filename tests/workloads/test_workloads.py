"""Tests for the TPCD workload definitions and the synthetic generators."""

import pytest

from repro.algebra.logical import QueryBatch
from repro.catalog.tpcd import tpcd_catalog
from repro.dag.sharing import build_batch_dag
from repro.workloads import (
    all_composite_batches,
    batched_queries,
    composite_batch,
    example1_batch,
    example1_catalog,
    q2_batch,
    q2_decorrelated,
    q3,
    q5,
    q7,
    q8,
    q9,
    q10,
    q11,
    q15,
    random_star_batch,
    standalone_workloads,
    star_schema_catalog,
)


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(0.1)


class TestBatchedQueries:
    def test_each_query_repeated_twice(self):
        queries = batched_queries(6)
        assert len(queries) == 12
        names = [q.name for q in queries]
        assert names[0] == "Q3a" and names[1] == "Q3b"
        assert len(set(names)) == 12

    def test_count_validation(self):
        with pytest.raises(ValueError):
            batched_queries(0)
        with pytest.raises(ValueError):
            batched_queries(7)

    def test_composite_batches(self):
        assert composite_batch(1).name == "BQ1"
        assert len(composite_batch(3)) == 6
        batches = all_composite_batches()
        assert list(batches) == [f"BQ{i}" for i in range(1, 7)]
        with pytest.raises(ValueError):
            composite_batch(0)

    @pytest.mark.parametrize("builder", [q3, q5, q7, q9, q10], ids=["Q3", "Q5", "Q7", "Q9", "Q10"])
    def test_individual_queries_build_into_dags(self, catalog, builder):
        query = builder()
        dag = build_batch_dag(QueryBatch(query.name, (query,)), catalog)
        assert dag.summary()["groups"] > 3

    def test_q8_is_an_eight_way_join(self, catalog):
        query = q8()
        dag = build_batch_dag(QueryBatch("Q8", (query,)), catalog)
        assert dag.summary()["relations"] >= 7  # nation appears twice under two aliases

    def test_variants_differ_only_in_constants(self, catalog):
        batch = composite_batch(1)
        dag = build_batch_dag(batch, catalog)
        # The two Q3 variants must not collapse into the same root but must share nodes.
        roots = set(dag.query_roots.values())
        assert len(roots) == 2
        assert len(dag.shareable_nodes()) >= 1


class TestStandaloneWorkloads:
    def test_all_four_present(self):
        workloads = standalone_workloads()
        assert set(workloads) == {"Q2", "Q2-D", "Q11", "Q15"}

    def test_q2_batch_shares_inner_join(self, catalog):
        dag = build_batch_dag(q2_batch(), catalog)
        assert len(dag.query_roots) == 2
        assert len(dag.shareable_nodes()) >= 1

    def test_q2_decorrelated_is_single_query_with_two_blocks(self, catalog):
        dag = build_batch_dag(q2_decorrelated(), catalog)
        assert len(dag.query_roots) == 1
        assert len(dag.block_roots) >= 2
        assert len(dag.shareable_nodes()) >= 1

    def test_q11_and_q15_have_intra_query_sharing(self, catalog):
        for workload in (q11(), q15()):
            dag = build_batch_dag(workload, catalog)
            assert len(dag.query_roots) == 1
            assert len(dag.shareable_nodes()) >= 1


class TestSyntheticWorkloads:
    def test_example1_batch_structure(self):
        batch = example1_batch()
        assert [q.name for q in batch] == ["ABC", "BCD"]
        catalog = example1_catalog()
        dag = build_batch_dag(batch, catalog)
        labels = [dag.describe_group(g) for g in dag.shareable_nodes()]
        assert any("b ⋈ c" in label.lower() for label in labels)

    def test_star_schema_catalog(self):
        catalog = star_schema_catalog(n_dimensions=4)
        assert catalog.has_table("fact")
        assert catalog.has_table("dim3")
        assert not catalog.has_table("dim4")

    def test_random_star_batch_deterministic_and_buildable(self):
        catalog = star_schema_catalog()
        batch_a = random_star_batch(4, seed=5)
        batch_b = random_star_batch(4, seed=5)
        assert [q.name for q in batch_a] == [q.name for q in batch_b]
        dag = build_batch_dag(batch_a, catalog)
        assert dag.summary()["groups"] > 4


class TestDriftingStarDatabase:
    def test_first_pass_matches_the_static_generator(self):
        from repro.workloads.synthetic import drifting_star_database, star_schema_database

        gen = drifting_star_database(2, seed=4, n_dimensions=3, fact_rows=50)
        first = next(gen)
        static = star_schema_database(seed=4, n_dimensions=3, fact_rows=50)
        assert first.tables == static.tables

    def test_drift_mutates_the_same_database_and_bumps_the_version(self):
        from repro.workloads.synthetic import drifting_star_database

        gen = drifting_star_database(
            3, seed=4, n_dimensions=3, fact_rows=64, dimension_rows=20,
            drift_factor=0.5, hot_fraction=0.25,
        )
        first = next(gen)
        version = first.version
        baseline = [dict(r) for r in first.table("fact")]
        second = next(gen)
        assert second is first, "the generator drifts one Database in place"
        assert second.version > version
        assert second.table("fact") != baseline
        assert len(second.table("fact")) == 32  # 64 × 0.5
        hot = {r["f_d0_key"] for r in second.table("fact")}
        assert max(hot) < 5, "keys concentrate on the hot dimension rows"
        third = next(gen)
        assert len(third.table("fact")) == 16  # 64 × 0.5²

    def test_key_fanout_makes_dimension_joins_selective(self):
        from repro.workloads.synthetic import star_schema_database

        uniform = star_schema_database(seed=1, n_dimensions=2, fact_rows=200,
                                       dimension_rows=20, key_fanout=1)
        sparse = star_schema_database(seed=1, n_dimensions=2, fact_rows=200,
                                      dimension_rows=20, key_fanout=10)
        dim_keys = {r["d0_key"] for r in sparse.table("dim0")}
        matching = sum(1 for r in sparse.table("fact") if r["f_d0_key"] in dim_keys)
        assert matching < 60, "with fanout 10 only ~1/10 of fact rows join"
        assert all(r["f_d0_key"] in dim_keys for r in uniform.table("fact"))

    def test_invalid_passes_rejected(self):
        from repro.workloads.synthetic import drifting_star_database

        with pytest.raises(ValueError):
            next(drifting_star_database(0))
