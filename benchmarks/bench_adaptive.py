"""Adaptive-feedback benchmark: drift-triggered re-optimization pays off.

The scenario is the acceptance bar of the adaptive subsystem, run on the
drifting star workload (:func:`repro.workloads.synthetic.drifting_star_database`):

* two sessions serve the identical batch over identically drifting data —
  one **frozen** (adaptation off, the default) and one **adaptive**;
* pass 0 (uniform keys): both choose the same plan, which profitably
  materializes a shared selective fact⋈dimension join;
* the fact table then drifts — its foreign keys concentrate on the hot
  dimension rows, so the shared join explodes by ``key_fanout`` against
  the static estimate;
* pass 1 (stale plans on new data): the adaptive session observes the
  explosion and invalidates the affected cached result, the frozen one
  keeps serving the stale plan forever;
* pass 2: the adaptive session re-optimizes with corrected statistics and
  its plan cost — compared under the *same* corrected statistics — must be
  strictly below the frozen plan's.

Besides the pytest-benchmark timings, the module writes
``BENCH_adaptive.json`` at the repository root for CI to upload.
"""

import json
import time

import pytest

from _env import bench_path, scaled, tiny
from repro.adaptive import AdaptiveConfig
from repro.service import OptimizerSession
from repro.workloads.synthetic import (
    drifting_star_database,
    random_star_batch,
    star_schema_catalog,
)

N_DIMENSIONS = 4
DIMENSION_ROWS = 40
KEY_FANOUT = 10
DATA_SEED = 3
BATCH_SEED = 17
DRIFT_THRESHOLD = 5.0


def fact_rows() -> int:
    return scaled(2000, 500)


def make_catalog():
    return star_schema_catalog(
        n_dimensions=N_DIMENSIONS,
        fact_rows=fact_rows(),
        dimension_rows=DIMENSION_ROWS,
        key_fanout=KEY_FANOUT,
    )


def make_drift():
    return drifting_star_database(
        2,
        seed=DATA_SEED,
        n_dimensions=N_DIMENSIONS,
        fact_rows=fact_rows(),
        dimension_rows=DIMENSION_ROWS,
        key_fanout=KEY_FANOUT,
        hot_fraction=0.2,
    )


def canonical(rows_by_query):
    """Order-insensitive view of an execution's rows, for cross-plan equality."""
    return {
        name: sorted(map(repr, (sorted(r.items()) for r in rows)))
        for name, rows in rows_by_query.items()
    }


def test_adaptive_beats_frozen_after_drift():
    """The acceptance criterion, asserted directly; writes BENCH_adaptive.json."""
    batch = random_star_batch(4, seed=BATCH_SEED, n_dimensions=N_DIMENSIONS)

    frozen_gen, adaptive_gen = make_drift(), make_drift()
    frozen = OptimizerSession(make_catalog(), database=next(frozen_gen))
    adaptive = OptimizerSession(
        make_catalog(),
        database=next(adaptive_gen),
        adaptive=AdaptiveConfig(drift_threshold=DRIFT_THRESHOLD),
    )

    # -- pass 0: uniform data, both sessions agree ------------------------
    frozen_cold = frozen.execute_batch(batch)
    adaptive_cold = adaptive.execute_batch(batch)
    assert adaptive_cold.result.materialized_count >= 1, "sharing should pay off"
    assert canonical(adaptive_cold.rows) == canonical(frozen_cold.rows)
    assert adaptive.statistics.drift_events == 0, "uniform pass must not drift"
    stale_selection = adaptive_cold.result.materialized

    # -- drift: hot-key skew, both databases change identically -----------
    next(frozen_gen)
    next(adaptive_gen)

    # -- pass 1: stale plans run on the new data; adaptation observes ----
    started = time.perf_counter()
    frozen_stale = frozen.execute_batch(batch)
    frozen_stale_time = time.perf_counter() - started
    started = time.perf_counter()
    adaptive.execute_batch(batch)
    adaptive_stale_time = time.perf_counter() - started
    assert adaptive.statistics.drift_events >= 1
    assert adaptive.statistics.results_invalidated >= 1
    assert frozen.statistics.drift_events == 0
    assert frozen.statistics.reoptimizations == 0

    # -- pass 2: the adaptive session re-optimizes, the frozen one cannot -
    strategies_before = frozen.statistics.strategies_run
    started = time.perf_counter()
    frozen_post = frozen.execute_batch(batch)
    frozen_post_time = time.perf_counter() - started
    assert frozen.statistics.strategies_run == strategies_before, (
        "the frozen session must keep serving its cached stale plan"
    )
    started = time.perf_counter()
    adaptive_post = adaptive.execute_batch(batch)
    adaptive_post_time = time.perf_counter() - started
    assert adaptive.statistics.reoptimizations >= 1
    assert canonical(adaptive_post.rows) == canonical(frozen_post.rows), (
        "re-optimization must not change query answers"
    )

    # Compare both plans under the *corrected* statistics: the frozen
    # session's materialization selection, re-costed by the adaptive
    # session's engine, against the re-optimized plan.
    prepared = adaptive.prepare(batch)
    stale_cost = prepared.engine.evaluate(frozenset(stale_selection)).total_cost
    reoptimized_cost = adaptive_post.result.total_cost
    assert reoptimized_cost < stale_cost, (
        f"re-optimized plan ({reoptimized_cost:.1f}ms) must beat the stale "
        f"plan ({stale_cost:.1f}ms) under corrected statistics"
    )

    bench_path("BENCH_adaptive.json").write_text(
        json.dumps(
            {
                "workload": "drifting-star",
                "fact_rows": fact_rows(),
                "tiny": tiny(),
                "batch": batch.name,
                "strategy": adaptive_post.strategy,
                "unit": "cost in milliseconds (model), times in seconds (wall)",
                "drift_threshold": DRIFT_THRESHOLD,
                "key_fanout": KEY_FANOUT,
                "stale_plan_cost": stale_cost,
                "reoptimized_plan_cost": reoptimized_cost,
                "cost_improvement": stale_cost / reoptimized_cost,
                "frozen_stale_execute": frozen_stale_time,
                "adaptive_stale_execute": adaptive_stale_time,
                "frozen_post_drift_execute": frozen_post_time,
                "adaptive_post_drift_execute": adaptive_post_time,
                "frozen_post_drift_rows_time": frozen_post.execution_time,
                "adaptive_post_drift_rows_time": adaptive_post.execution_time,
                "adaptive_reoptimize_time": adaptive_post.result.optimization_time,
                "drift_events": adaptive.statistics.drift_events,
                "results_invalidated": adaptive.statistics.results_invalidated,
                "reoptimizations": adaptive.statistics.reoptimizations,
                "observations_recorded": adaptive.statistics.observations_recorded,
                "frozen_reoptimizations": frozen.statistics.reoptimizations,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )


def test_adaptation_off_is_bit_identical_with_zero_reoptimizations():
    """The control half of the acceptance criterion: default-off changes nothing."""
    batch = random_star_batch(4, seed=BATCH_SEED, n_dimensions=N_DIMENSIONS)
    gen = make_drift()
    session = OptimizerSession(make_catalog(), database=next(gen))
    cold = session.execute_batch(batch)
    warm = session.execute_batch(batch)
    assert warm.rows == cold.rows, "warm rows must be bit-identical"
    assert warm.materializations == 0
    assert session.feedback is None
    assert session.statistics.observations_recorded == 0
    assert session.statistics.reoptimizations == 0


@pytest.mark.benchmark(group="adaptive")
def test_adaptive_serving_loop(benchmark):
    """End-to-end cost of one full observe→drift→re-optimize cycle."""
    batch = random_star_batch(4, seed=BATCH_SEED, n_dimensions=N_DIMENSIONS)

    def cycle():
        gen = make_drift()
        session = OptimizerSession(
            make_catalog(),
            database=next(gen),
            adaptive=AdaptiveConfig(drift_threshold=DRIFT_THRESHOLD),
        )
        session.execute_batch(batch)
        next(gen)
        session.execute_batch(batch)
        return session.execute_batch(batch)

    execution = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert execution.rows
