"""Span-based tracing for the serving stack.

A **trace** is one request's causal story: a trace ID minted when a query
enters the system (at :meth:`~repro.service.scheduler.BatchScheduler.submit`
time, or at the session API boundary for direct calls) and carried through
every component that works on it — scheduler worker, shard session,
optimizer phases, executor backend, materialization cache, spill tier,
feedback absorption.  A **span** is one timed operation inside a trace;
spans nest per thread, and cheap point-in-time **events** (cache hit, spill,
drift) attach to whichever span is open when they happen.

Two implementations share one surface:

* :class:`Tracer` — the real thing: thread-local span stacks, per-trace
  sampling decided at the root, records pushed to a sink (the JSONL writer
  for ``--serve --trace-dir``, an in-memory sink for tests).
* :class:`NullTracer` (the module singleton :data:`NULL_TRACER`) — the
  disabled mode.  Every method is a constant-return no-op and ``span()``
  hands back one preallocated null context manager, so an uninstrumented
  serving path pays a single attribute load + call per potential span and
  allocates nothing.  ``benchmarks/bench_obs.py`` holds this to its ≤2%
  overhead budget.

Cross-thread propagation is explicit, not ambient: the component that
crosses a thread boundary (the scheduler) captures ``trace_id`` at submit
time and re-enters it on the worker via :meth:`Tracer.activate` — the same
shape as W3C traceparent propagation, minus the wire format.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from random import random
from typing import Dict, List, Optional, Union

__all__ = [
    "InMemorySink",
    "JsonlTraceWriter",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
]


def _new_id() -> str:
    return os.urandom(8).hex()


class Span:
    """One timed operation; also its own context manager.

    Mutating helpers (:meth:`set`, :meth:`event`) are only called from the
    thread that opened the span — spans are thread-local by construction,
    so they carry no lock.
    """

    __slots__ = (
        "_tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "events",
        "sampled",
        "start_wall",
        "_start_perf",
        "duration",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        parent_id: Optional[str],
        name: str,
        attrs: Dict[str, object],
        sampled: bool,
    ):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.events: List[Dict[str, object]] = []
        self.sampled = sampled
        self.start_wall = time.time()
        self._start_perf = time.perf_counter()
        self.duration: Optional[float] = None

    def set(self, **attrs: object) -> None:
        """Attach (or overwrite) span attributes."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Record a point-in-time event inside this span."""
        if self.sampled:
            self.events.append(
                {
                    "name": name,
                    "dt": time.perf_counter() - self._start_perf,
                    **({"attrs": attrs} if attrs else {}),
                }
            )

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._start_perf
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)
        return False

    def record(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": "span",
            "trace": self.trace_id,
            "span": self.span_id,
            "name": self.name,
            "ts": self.start_wall,
            "dur": self.duration,
        }
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        if self.attrs:
            out["attrs"] = self.attrs
        if self.events:
            out["events"] = self.events
        return out


class _Activation:
    """A foreign trace context re-entered on this thread (no span of its own)."""

    __slots__ = ("_tracer", "trace_id", "parent_id", "sampled")

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        parent_id: Optional[str],
        sampled: bool,
    ):
        self._tracer = tracer
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.sampled = sampled

    # Frame protocol shared with Span: what a child span inherits.
    @property
    def span_id(self) -> Optional[str]:
        return self.parent_id

    def __enter__(self) -> "_Activation":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._pop(self)
        return False


class _NullSpan:
    """The disabled tracer's span: every method a no-op, one shared instance."""

    __slots__ = ()
    trace_id = None
    span_id = None
    sampled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: object) -> None:
        pass

    def event(self, name: str, **attrs: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: a true no-op object for the hot path.

    Shares :class:`Tracer`'s surface; ``span()``/``activate()`` return one
    preallocated null context manager and nothing is ever recorded.  Use
    the module singleton :data:`NULL_TRACER`.
    """

    __slots__ = ()
    enabled = False

    def new_trace_id(self) -> Optional[str]:
        return None

    def current_trace_id(self) -> Optional[str]:
        return None

    def current_span(self) -> _NullSpan:
        return _NULL_SPAN

    def activate(
        self, trace_id: Optional[str] = None, parent_id: Optional[str] = None
    ) -> _NullSpan:
        return _NULL_SPAN

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: object) -> None:
        pass

    def record_span(
        self,
        name: str,
        seconds: float,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **attrs: object,
    ) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class InMemorySink:
    """Collects span records in a list — the test/debug sink."""

    def __init__(self):
        self._lock = threading.Lock()
        self.records: List[Dict[str, object]] = []

    def write(self, record: Dict[str, object]) -> None:
        with self._lock:
            self.records.append(record)

    def spans(self, name: Optional[str] = None) -> List[Dict[str, object]]:
        with self._lock:
            records = list(self.records)
        if name is None:
            return records
        return [r for r in records if r.get("name") == name]

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlTraceWriter:
    """Appends span records as JSON lines to a file (one record per line).

    ``target`` may be a directory — the writer then creates
    ``trace-<pid>.jsonl`` inside it, so several processes sharing one
    ``--trace-dir`` never interleave partial lines.  Records a json encoder
    cannot serialize degrade via ``repr`` rather than failing the traced
    request (tracing must never break serving).
    """

    def __init__(self, target: Union[str, Path]):
        target = Path(target)
        if target.suffix != ".jsonl":
            target.mkdir(parents=True, exist_ok=True)
            target = target / f"trace-{os.getpid()}.jsonl"
        else:
            target.parent.mkdir(parents=True, exist_ok=True)
        self.path = target
        self._lock = threading.Lock()
        self._handle = open(target, "a", encoding="utf-8")

    def write(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=repr)
        with self._lock:
            self._handle.write(line + "\n")

    def flush(self) -> None:
        with self._lock:
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


class Tracer:
    """The enabled tracer: thread-local span stacks over one sink.

    Args:
        sink: where finished span records go; anything with
            ``write(dict)`` / ``flush()`` / ``close()`` (an
            :class:`InMemorySink` is created when omitted).
        sample: probability a *new trace* is recorded, decided once at the
            trace root and inherited by every span and event in it —
            context (trace IDs) still propagates for unsampled traces, so
            sampling changes observability volume, never behaviour.
    """

    enabled = True

    def __init__(self, sink=None, *, sample: float = 1.0):
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be in [0, 1]")
        self.sink = sink if sink is not None else InMemorySink()
        self.sample = sample
        self._local = threading.local()

    # ----------------------------------------------------------------- stack

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, frame) -> None:
        self._stack().append(frame)

    def _pop(self, frame) -> None:
        stack = self._stack()
        if stack and stack[-1] is frame:
            stack.pop()
        else:  # pragma: no cover - misuse guard (exit out of order)
            try:
                stack.remove(frame)
            # repro-lint: disable=bare-except-swallow -- frame already popped by an earlier out-of-order exit; nothing left to unwind
            except ValueError:
                pass
        if isinstance(frame, Span) and frame.sampled:
            self.sink.write(frame.record())

    def _current(self):
        stack = self._stack()
        return stack[-1] if stack else None

    def _decide_sampled(self) -> bool:
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        return random() < self.sample

    # ------------------------------------------------------------------- API

    def new_trace_id(self) -> str:
        """Mint the ID a request will be traced under."""
        return _new_id()

    def current_trace_id(self) -> Optional[str]:
        current = self._current()
        return current.trace_id if current is not None else None

    def current_span(self):
        """The innermost open span/activation on this thread, or None."""
        return self._current()

    def activate(
        self, trace_id: Optional[str] = None, parent_id: Optional[str] = None
    ) -> _Activation:
        """Re-enter a trace context minted elsewhere (e.g. on another thread).

        Context manager; spans opened inside it belong to ``trace_id``.
        The sampling decision for an activated trace is made here (the
        minting side only allocated an ID).
        """
        return _Activation(
            self,
            trace_id if trace_id is not None else self.new_trace_id(),
            parent_id,
            self._decide_sampled(),
        )

    def span(self, name: str, **attrs: object) -> Span:
        """Open a span under the current thread's trace (context manager).

        Without an enclosing trace a fresh root trace is started (and
        sampled per the tracer's rate) — components never need to know
        whether a caller established context.
        """
        current = self._current()
        if current is None:
            return Span(self, self.new_trace_id(), None, name, attrs, self._decide_sampled())
        return Span(self, current.trace_id, current.span_id, name, attrs, current.sampled)

    def event(self, name: str, **attrs: object) -> None:
        """A point-in-time event: attached to the open span, else standalone."""
        current = self._current()
        if isinstance(current, Span):
            current.event(name, **attrs)
            return
        sampled = current.sampled if current is not None else self._decide_sampled()
        if not sampled:
            return
        record: Dict[str, object] = {
            "kind": "event",
            "trace": current.trace_id if current is not None else self.new_trace_id(),
            "name": name,
            "ts": time.time(),
        }
        if attrs:
            record["attrs"] = attrs
        self.sink.write(record)

    def record_span(
        self,
        name: str,
        seconds: float,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **attrs: object,
    ) -> None:
        """Emit an already-finished span (duration measured by the caller).

        The executor's ``observer`` hook reports per-plan-node timings after
        the fact; this writes them as proper spans of the current trace
        without having wrapped the execution in a context manager.  Explicit
        ``trace_id``/``parent_id`` override the thread context (used to file
        one physical execution under several submitters' traces).
        """
        current = self._current()
        if trace_id is None:
            if current is not None:
                trace_id = current.trace_id
                parent_id = current.span_id if parent_id is None else parent_id
                if not current.sampled:
                    return
            else:
                trace_id = self.new_trace_id()
                if not self._decide_sampled():
                    return
        record: Dict[str, object] = {
            "kind": "span",
            "trace": trace_id,
            "span": _new_id(),
            "name": name,
            "ts": time.time() - seconds,
            "dur": seconds,
        }
        if parent_id is not None:
            record["parent"] = parent_id
        if attrs:
            record["attrs"] = attrs
        self.sink.write(record)

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()
