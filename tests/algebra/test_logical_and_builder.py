"""Tests for logical operator trees, the builder and physical properties."""

import pytest

from repro.algebra import builder as qb
from repro.algebra.expressions import col, eq, lt
from repro.algebra.logical import (
    Aggregate,
    DerivedTable,
    Join,
    Project,
    Query,
    QueryBatch,
    Relation,
    Select,
    walk,
)
from repro.algebra.properties import ANY_ORDER, SortOrder


class TestLogicalOperators:
    def test_relation_name_defaults_to_table(self):
        assert Relation("orders").name == "orders"
        assert Relation("nation", "n1").name == "n1"

    def test_children_and_walk(self):
        plan = Select(Join(Relation("a"), Relation("b"), eq(col("x"), col("y"))), lt(col("z"), 1))
        kinds = [type(node).__name__ for node in walk(plan)]
        assert kinds == ["Select", "Join", "Relation", "Relation"]

    def test_pretty_contains_operators(self):
        plan = Aggregate(Relation("orders"), (col("o_orderdate"),), ())
        text = plan.pretty()
        assert "Aggregate" in text and "Relation(orders)" in text

    def test_query_batch_validation(self):
        q = Query("Q1", Relation("orders"))
        with pytest.raises(ValueError):
            QueryBatch("b", (q, Query("Q1", Relation("lineitem"))))
        with pytest.raises(ValueError):
            QueryBatch("empty", ())
        batch = QueryBatch("ok", (q,))
        assert len(batch) == 1
        assert list(batch)[0] is q


class TestBuilder:
    def test_scan_filter_join_aggregate(self):
        query = (
            qb.scan("customer")
            .join(qb.scan("orders"), eq(col("c_custkey"), col("o_custkey")))
            .filter(eq(col("c_mktsegment"), "BUILDING"))
            .aggregate(["o_orderdate"], [("sum", "o_totalprice", "total")])
            .query("demo")
        )
        operators = [type(node).__name__ for node in walk(query.plan)]
        assert operators[0] == "Aggregate"
        assert "Join" in operators
        assert "Select" in operators

    def test_filter_with_no_predicates_is_noop(self):
        plan = qb.scan("orders").filter().build()
        assert isinstance(plan, Relation)

    def test_project(self):
        plan = qb.scan("orders").project(["o_orderkey", "o_orderdate"]).build()
        assert isinstance(plan, Project)
        assert plan.columns == (col("o_orderkey"), col("o_orderdate"))

    def test_as_derived(self):
        plan = (
            qb.scan("lineitem")
            .aggregate(["l_suppkey"], [("sum", "l_extendedprice", "total")])
            .as_derived("revenue")
            .build()
        )
        assert isinstance(plan, DerivedTable)
        assert plan.alias == "revenue"

    def test_batch_helper(self):
        batch = qb.batch("b", [qb.scan("orders").query("Q1")])
        assert isinstance(batch, QueryBatch)
        assert batch.name == "b"

    def test_aggregate_accepts_aggregate_expr_objects(self):
        from repro.algebra.expressions import AggregateExpr, AggregateFunction

        agg = AggregateExpr(AggregateFunction.MAX, col("o_totalprice"), "max_price")
        plan = qb.scan("orders").aggregate([], [agg]).build()
        assert isinstance(plan, Aggregate)
        assert plan.aggregates == (agg,)


class TestSortOrder:
    def test_any_order_is_satisfied_by_everything(self):
        assert SortOrder((col("a"),)).satisfies(ANY_ORDER)
        assert ANY_ORDER.satisfies(ANY_ORDER)

    def test_prefix_satisfaction(self):
        have = SortOrder((col("t.a"), col("t.b")))
        assert have.satisfies(SortOrder((col("t.a"),)))
        assert not have.satisfies(SortOrder((col("t.b"),)))
        assert not SortOrder((col("t.a"),)).satisfies(have)

    def test_qualifier_wildcard(self):
        have = SortOrder((col("orders.o_orderkey"),))
        assert have.satisfies(SortOrder((col("o_orderkey"),)))
        assert not have.satisfies(SortOrder((col("lineitem.o_orderkey"),)))

    def test_bool_and_str(self):
        assert not ANY_ORDER
        assert SortOrder((col("a"),))
        assert str(ANY_ORDER) == "any"
        assert "a" in str(SortOrder((col("a"),)))
