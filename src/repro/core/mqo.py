"""The user-facing multi-query optimizer.

:class:`MultiQueryOptimizer` ties the whole reproduction together: it builds
the combined AND-OR DAG for a batch of queries, wraps ``bestCost`` in the
incremental engine, and runs one of the materialization-selection
strategies:

``"volcano"``
    No sharing at all — every query gets its individually optimal plan
    (``bestCost(Q, ∅)``); the baseline of the paper's experiments.
``"greedy"``
    The Greedy algorithm of Roy et al. (Algorithm 1), optionally lazy.
``"marginal-greedy"``
    The paper's MarginalGreedy algorithm (Algorithm 2) on the MQO
    decomposition, optionally lazy.
``"share-all"``
    Materialize every shareable node (the heuristic of approaches that
    materialize all common subexpressions, e.g. Silva et al.).
``"exhaustive"``
    Enumerate every subset of shareable nodes (only feasible for tiny DAGs;
    used to validate the greedy strategies in tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from ..algebra.logical import Query, QueryBatch
from ..catalog.catalog import Catalog
from ..cost.model import CostModel, CostParameters
from ..dag.build import DagConfig
from ..dag.sharing import BatchDag, build_batch_dag
from ..optimizer.best_cost import BestCostEngine
from ..optimizer.volcano import BestCostResult
from .benefit import BestCostFunction, mqo_decomposition
from .exhaustive import minimize
from .greedy import greedy, lazy_greedy
from .marginal_greedy import lazy_marginal_greedy, marginal_greedy
from .set_functions import CallCountingFunction

__all__ = ["MQOResult", "MultiQueryOptimizer", "STRATEGIES"]

STRATEGIES = ("volcano", "greedy", "marginal-greedy", "share-all", "exhaustive")


@dataclass
class MQOResult:
    """The outcome of optimizing one batch with one strategy."""

    strategy: str
    batch_name: str
    total_cost: float
    volcano_cost: float
    materialized: Tuple[int, ...]
    materialized_labels: Tuple[str, ...]
    optimization_time: float
    oracle_calls: int
    query_costs: Dict[str, float]
    plan: BestCostResult
    dag_summary: Dict[str, int] = field(default_factory=dict)

    @property
    def benefit(self) -> float:
        """Materialization benefit ``bc(∅) − bc(X)``."""
        return self.volcano_cost - self.total_cost

    @property
    def improvement(self) -> float:
        """Relative improvement over the plain Volcano baseline (0..1)."""
        if self.volcano_cost <= 0:
            return 0.0
        return self.benefit / self.volcano_cost

    @property
    def materialized_count(self) -> int:
        return len(self.materialized)

    def summary(self) -> str:
        lines = [
            f"strategy            : {self.strategy}",
            f"batch               : {self.batch_name}",
            f"estimated cost      : {self.total_cost / 1000.0:.2f} s",
            f"volcano (no MQO)    : {self.volcano_cost / 1000.0:.2f} s",
            f"benefit             : {self.benefit / 1000.0:.2f} s ({self.improvement:.1%})",
            f"materialized nodes  : {self.materialized_count}",
            f"optimization time   : {self.optimization_time:.3f} s",
            f"bestCost calls      : {self.oracle_calls}",
        ]
        for label in self.materialized_labels:
            lines.append(f"  * {label}")
        return "\n".join(lines)


class MultiQueryOptimizer:
    """Facade: build the DAG for a batch and pick the nodes to materialize."""

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        dag_config: Optional[DagConfig] = None,
        *,
        incremental: bool = True,
    ):
        self.catalog = catalog
        self.cost_model = cost_model or CostModel()
        self.dag_config = dag_config or DagConfig()
        self.incremental = incremental

    # ------------------------------------------------------------------ setup

    def build_dag(self, batch: Union[QueryBatch, Sequence[Query]]) -> BatchDag:
        batch = self._as_batch(batch)
        return build_batch_dag(batch, self.catalog, self.dag_config)

    def make_engine(self, dag: BatchDag) -> BestCostEngine:
        return BestCostEngine(dag, self.cost_model, incremental=self.incremental)

    @staticmethod
    def _as_batch(batch: Union[QueryBatch, Sequence[Query]]) -> QueryBatch:
        if isinstance(batch, QueryBatch):
            return batch
        queries = tuple(batch)
        return QueryBatch("batch", queries)

    # --------------------------------------------------------------- optimize

    def optimize(
        self,
        batch: Union[QueryBatch, Sequence[Query]],
        strategy: str = "marginal-greedy",
        *,
        lazy: bool = True,
        cardinality: Optional[int] = None,
        decomposition: str = "use-cost",
    ) -> MQOResult:
        """Build the DAG and run one strategy end to end."""
        batch = self._as_batch(batch)
        dag = self.build_dag(batch)
        engine = self.make_engine(dag)
        return self.optimize_with(
            dag,
            engine,
            batch_name=batch.name,
            strategy=strategy,
            lazy=lazy,
            cardinality=cardinality,
            decomposition=decomposition,
        )

    def compare(
        self,
        batch: Union[QueryBatch, Sequence[Query]],
        strategies: Sequence[str] = ("volcano", "greedy", "marginal-greedy"),
        *,
        lazy: bool = True,
        cardinality: Optional[int] = None,
        decomposition: str = "use-cost",
    ) -> Dict[str, MQOResult]:
        """Run several strategies on the same DAG (engines are per-strategy)."""
        batch = self._as_batch(batch)
        dag = self.build_dag(batch)
        results: Dict[str, MQOResult] = {}
        for strategy in strategies:
            engine = self.make_engine(dag)
            results[strategy] = self.optimize_with(
                dag,
                engine,
                batch_name=batch.name,
                strategy=strategy,
                lazy=lazy,
                cardinality=cardinality,
                decomposition=decomposition,
            )
        return results

    def optimize_with(
        self,
        dag: BatchDag,
        engine: BestCostEngine,
        *,
        batch_name: str,
        strategy: str = "marginal-greedy",
        lazy: bool = True,
        cardinality: Optional[int] = None,
        decomposition: str = "use-cost",
    ) -> MQOResult:
        """Run one strategy against a pre-built DAG and engine."""
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; choose one of {STRATEGIES}")
        start = time.perf_counter()
        calls_before = engine.statistics.evaluations

        volcano_cost = engine.volcano_cost()

        def ordered(elements) -> Tuple:
            return tuple(
                sorted(
                    elements,
                    key=lambda e: (getattr(e, "group", e), str(getattr(e, "order", ""))),
                )
            )

        if strategy == "volcano":
            selected: Tuple = ()
        elif strategy == "share-all":
            selected = ordered(dag.shareable_nodes())
            if cardinality is not None:
                selected = selected[:cardinality]
        elif strategy == "greedy":
            oracle = CallCountingFunction(BestCostFunction(engine))
            run = (lazy_greedy if lazy else greedy)(oracle, cardinality=cardinality)
            selected = ordered(run.selected)
        elif strategy == "marginal-greedy":
            problem = mqo_decomposition(engine, kind=decomposition)
            run = (lazy_marginal_greedy if lazy else marginal_greedy)(
                problem, cardinality=cardinality
            )
            selected = ordered(run.selected)
        else:  # exhaustive
            oracle = BestCostFunction(engine)
            if len(oracle.universe) > 16:
                raise ValueError(
                    "exhaustive strategy is limited to at most 16 materialization candidates"
                )
            best = minimize(oracle, cardinality=cardinality)
            selected = ordered(best.best_set)

        result = engine.evaluate(frozenset(selected))
        if result.total_cost > volcano_cost and strategy not in ("volcano",):
            # The final plan choice is cost-based: if the selected
            # materializations do not pay off (possible for share-all, and in
            # principle for marginal-greedy whose additive cost part is only
            # an approximation), fall back to the no-sharing plan.
            selected = ()
            result = engine.evaluate(frozenset())
        elapsed = time.perf_counter() - start
        calls = engine.statistics.evaluations - calls_before

        return MQOResult(
            strategy=strategy,
            batch_name=batch_name,
            total_cost=result.total_cost,
            volcano_cost=volcano_cost,
            materialized=selected,
            materialized_labels=tuple(dag.describe_candidate(g) for g in selected),
            optimization_time=elapsed,
            oracle_calls=calls,
            query_costs={name: plan.cost for name, plan in result.query_plans.items()},
            plan=result,
            dag_summary=dag.summary(),
        )
