"""End-to-end smoke tests for the DAG + optimizer + MQO pipeline.

These are the first integration tests exercised while bringing the
substrate up; the detailed per-module tests live alongside them.
"""

import pytest

from repro.algebra import builder as qb
from repro.algebra.expressions import col, eq, lt
from repro.algebra.logical import QueryBatch
from repro.catalog.tpcd import tpcd_catalog
from repro.core.mqo import MultiQueryOptimizer
from repro.dag.sharing import build_batch_dag
from repro.optimizer.best_cost import BestCostEngine


def order_lineitem_query(name, cutoff):
    return (
        qb.scan("orders")
        .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
        .filter(lt(col("o_orderdate"), cutoff))
        .aggregate(["o_orderdate"], [("sum", "l_extendedprice", "revenue")])
        .query(name)
    )


def three_way_query(name, segment):
    return (
        qb.scan("customer")
        .join(qb.scan("orders"), eq(col("c_custkey"), col("o_custkey")))
        .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
        .filter(eq(col("c_mktsegment"), segment))
        .aggregate(["o_orderdate"], [("sum", "l_extendedprice", "revenue")])
        .query(name)
    )


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(scale_factor=0.01)


class TestDagConstruction:
    def test_single_query_dag(self, catalog):
        batch = QueryBatch("single", (three_way_query("Q", "BUILDING"),))
        dag = build_batch_dag(batch, catalog)
        summary = dag.summary()
        assert summary["queries"] == 1
        assert summary["groups"] > 5
        assert summary["mexprs"] >= summary["groups"] - 1

    def test_identical_queries_unify(self, catalog):
        q1 = three_way_query("Q1", "BUILDING")
        q2 = three_way_query("Q2", "BUILDING")
        dag = build_batch_dag(QueryBatch("dup", (q1, q2)), catalog)
        assert dag.query_roots["Q1"] == dag.query_roots["Q2"]
        assert len(dag.shareable_nodes()) >= 1

    def test_different_constants_share_via_subsumption(self, catalog):
        q1 = three_way_query("Q1", "BUILDING")
        q2 = three_way_query("Q2", "AUTOMOBILE")
        dag = build_batch_dag(QueryBatch("pair", (q1, q2)), catalog)
        assert dag.query_roots["Q1"] != dag.query_roots["Q2"]
        # The unfiltered (or relaxed) customer⋈orders⋈lineitem groups are shared.
        assert len(dag.shareable_nodes()) >= 1


class TestBestCost:
    def test_volcano_cost_positive_and_stable(self, catalog):
        batch = QueryBatch("pair", (order_lineitem_query("A", 19950101),
                                    three_way_query("B", "BUILDING")))
        dag = build_batch_dag(batch, catalog)
        engine = BestCostEngine(dag)
        cost1 = engine.volcano_cost()
        cost2 = engine.cost(frozenset())
        assert cost1 > 0
        assert cost1 == pytest.approx(cost2)

    def test_materializing_shared_node_changes_cost_consistently(self, catalog):
        q1 = order_lineitem_query("A", 19950101)
        q2 = order_lineitem_query("B", 19950101)
        dag = build_batch_dag(QueryBatch("dup", (q1, q2)), catalog)
        engine = BestCostEngine(dag)
        baseline = engine.volcano_cost()
        shareable = dag.shareable_nodes()
        assert shareable
        for gid in shareable:
            cost = engine.cost(frozenset({gid}))
            assert cost > 0
        best_single = min(engine.cost(frozenset({g})) for g in shareable)
        # Materializing the best single shared node must not be worse than
        # twice recomputing everything... at least it should never be negative.
        assert best_single > 0
        assert baseline > 0

    def test_incremental_matches_full(self, catalog):
        q1 = three_way_query("A", "BUILDING")
        q2 = three_way_query("B", "AUTOMOBILE")
        dag = build_batch_dag(QueryBatch("pair", (q1, q2)), catalog)
        shareable = dag.shareable_nodes()
        if len(shareable) < 2:
            pytest.skip("not enough shareable nodes for the scenario")
        incremental = BestCostEngine(dag, incremental=True)
        full = BestCostEngine(dag, incremental=False)
        subsets = [frozenset(), frozenset({shareable[0]}),
                   frozenset({shareable[0], shareable[1]}), frozenset({shareable[1]})]
        for subset in subsets:
            assert incremental.cost(subset) == pytest.approx(full.cost(subset), rel=1e-9)


class TestMultiQueryOptimizer:
    def test_strategies_ordering(self, catalog):
        q1 = three_way_query("Q1", "BUILDING")
        q2 = three_way_query("Q2", "BUILDING")
        mqo = MultiQueryOptimizer(catalog)
        results = mqo.compare(QueryBatch("dup", (q1, q2)),
                              strategies=("volcano", "greedy", "marginal-greedy"))
        volcano = results["volcano"].total_cost
        greedy_cost = results["greedy"].total_cost
        marginal = results["marginal-greedy"].total_cost
        assert greedy_cost <= volcano + 1e-6
        assert marginal <= volcano + 1e-6
        assert results["volcano"].materialized_count == 0

    def test_result_summary_readable(self, catalog):
        q1 = order_lineitem_query("A", 19950101)
        q2 = order_lineitem_query("B", 19950101)
        mqo = MultiQueryOptimizer(catalog)
        result = mqo.optimize(QueryBatch("dup", (q1, q2)), strategy="greedy")
        text = result.summary()
        assert "strategy" in text
        assert "materialized nodes" in text
        assert result.oracle_calls >= 1
