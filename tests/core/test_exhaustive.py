"""Tests for the brute-force optimum search."""

import pytest

from repro.core.exhaustive import maximize, minimize
from repro.core.set_functions import AdditiveFunction, LambdaSetFunction


class TestMaximize:
    def test_additive(self):
        fn = AdditiveFunction({"a": 2.0, "b": -1.0, "c": 3.0})
        result = maximize(fn)
        assert result.best_set == frozenset({"a", "c"})
        assert result.best_value == pytest.approx(5.0)
        assert result.subsets_evaluated == 8

    def test_cardinality_constraint(self):
        fn = AdditiveFunction({"a": 2.0, "b": 1.0, "c": 3.0})
        result = maximize(fn, cardinality=1)
        assert result.best_set == frozenset({"c"})

    def test_tie_break_prefers_smaller_sets(self):
        fn = LambdaSetFunction({"a", "b"}, lambda s: 1.0 if s else 0.0)
        result = maximize(fn)
        assert len(result.best_set) == 1

    def test_refuses_large_universe(self):
        fn = AdditiveFunction({i: 1.0 for i in range(30)})
        with pytest.raises(ValueError):
            maximize(fn)
        # ...unless the caller overrides the guard (kept small here).
        small = AdditiveFunction({i: 1.0 for i in range(5)})
        assert maximize(small, max_universe=5).best_value == 5.0


class TestMinimize:
    def test_additive(self):
        fn = AdditiveFunction({"a": 2.0, "b": -1.0, "c": 3.0})
        result = minimize(fn)
        assert result.best_set == frozenset({"b"})
        assert result.best_value == pytest.approx(-1.0)

    def test_minimize_is_maximize_of_negation(self):
        fn = AdditiveFunction({"a": 2.0, "b": -1.0, "c": 3.0})
        assert minimize(fn).best_value == pytest.approx(-maximize(fn.scaled(-1.0)).best_value)

    def test_cardinality(self):
        fn = AdditiveFunction({"a": -2.0, "b": -1.0, "c": -3.0})
        result = minimize(fn, cardinality=2)
        assert result.best_set == frozenset({"a", "c"})
