"""The adaptive feedback loop through the serving layer (tier-1).

Covers the acceptance criteria of the adaptive subsystem:

* with adaptation **disabled** (the default) nothing is observed, nothing
  is re-optimized, and warm traffic is served bit-identically;
* with adaptation **enabled**, stable traffic is still untouched (no drift
  → no corrections → bit-identical warm results), while a data change that
  contradicts the static estimates triggers exactly the expected
  re-optimizations — and only for the batches that contain the drifted
  node;
* an operator error during an instrumented run leaves the statistics store
  untouched (record-on-success only).
"""

import random

import pytest

from repro.adaptive import AdaptiveConfig, BenefitAwarePolicy, CostLRUPolicy
from repro.algebra import builder as qb
from repro.algebra.expressions import col, eq
from repro.algebra.logical import QueryBatch
from repro.execution import Executor
from repro.execution.data import example1_database
from repro.service import MaterializationCache, OptimizerSession
from repro.workloads.synthetic import example1_batch, example1_catalog

LARGE, SMALL = 2000, 200
#: First-pass estimates on the matched catalog/database are accurate to well
#: under this factor; the drift below overshoots it by design (×10).
THRESHOLD = 3.0


@pytest.fixture()
def catalog():
    # Catalog statistics sized to match the database exactly, so estimates
    # are honest and only a *data change* can create drift.
    return example1_catalog(large_rows=LARGE, small_rows=SMALL)


@pytest.fixture()
def database():
    return example1_database(large_rows=LARGE, small_rows=SMALL)


@pytest.fixture()
def control_batch():
    """A batch over c and d only — no plan node involves relation b."""
    query = (
        qb.scan("c")
        .join(qb.scan("d"), eq(col("c_join"), col("d_key")))
        .query("CD")
    )
    return QueryBatch("control", (query,))


def drift_b(database):
    """Make every b row join with c (the estimate says 1 in 10 does)."""
    rng = random.Random(7)
    database.replace_table(
        "b",
        [
            {"b_key": i, "b_join": rng.randrange(SMALL), "b_payload": f"b-{i}"}
            for i in range(LARGE)
        ],
    )


class TestAdaptationDisabled:
    def test_default_session_observes_and_adapts_nothing(self, catalog, database):
        session = OptimizerSession(catalog, database=database)
        assert session.feedback is None and session.adaptive_config is None
        cold = session.execute_batch(example1_batch())
        warm = session.execute_batch(example1_batch())
        assert warm.rows == cold.rows
        assert warm.materializations == 0
        assert session.statistics.observations_recorded == 0
        assert session.statistics.reoptimizations == 0

    def test_disabled_config_is_the_same_as_none(self, catalog, database):
        session = OptimizerSession(
            catalog, database=database, adaptive=AdaptiveConfig(enabled=False)
        )
        assert session.feedback is None
        session.execute_batch(example1_batch())
        assert session.statistics.observations_recorded == 0

    def test_disabled_session_never_reoptimizes_across_drift(self, catalog, database):
        session = OptimizerSession(catalog, database=database)
        cold = session.execute_batch(example1_batch())
        drift_b(database)
        after = session.execute_batch(example1_batch())
        # Data invalidation recomputes rows, but the *plan* stays cached.
        assert after.result.materialized == cold.result.materialized
        assert session.statistics.strategies_run == cold.result.oracle_calls * 0 + 1
        assert session.statistics.reoptimizations == 0
        assert session.statistics.drift_events == 0


class TestAdaptationEnabled:
    def make_session(self, catalog, database):
        return OptimizerSession(
            catalog,
            database=database,
            adaptive=AdaptiveConfig(drift_threshold=THRESHOLD),
        )

    def test_stable_traffic_records_but_never_drifts(self, catalog, database):
        session = self.make_session(catalog, database)
        cold = session.execute_batch(example1_batch())
        assert session.statistics.observations_recorded > 0
        assert len(session.feedback) > 0
        warm = session.execute_batch(example1_batch())
        assert warm.rows == cold.rows, "no drift → warm results stay bit-identical"
        assert warm.materializations == 0
        assert session.statistics.drift_events == 0
        assert session.statistics.reoptimizations == 0

    def test_drift_triggers_exactly_the_expected_reoptimizations(
        self, catalog, database, control_batch
    ):
        session = self.make_session(catalog, database)
        stale = session.execute_batch(example1_batch())
        session.execute_batch(control_batch)
        assert session.statistics.drift_events == 0

        drift_b(database)
        # The stale plan runs once on the new data; its observations reveal
        # the b⋈c explosion and invalidate the example1 result — and only it.
        session.execute_batch(example1_batch())
        assert session.statistics.drift_events >= 1
        assert session.statistics.results_invalidated == 1

        strategies_before = session.statistics.strategies_run
        reoptimized = session.execute_batch(example1_batch())
        assert session.statistics.reoptimizations == 1
        assert session.statistics.strategies_run == strategies_before + 1
        # The corrected statistics change the plan: materializing the
        # now-huge b⋈c no longer pays off.
        assert reoptimized.result.materialized != stale.result.materialized

        # No-drift traffic is untouched: the control result is still served
        # from the cache, with no further re-optimization.
        strategies_before = session.statistics.strategies_run
        session.execute_batch(control_batch)
        assert session.statistics.strategies_run == strategies_before
        assert session.statistics.reoptimizations == 1

    def test_reoptimized_rows_match_a_fresh_executor(self, catalog, database):
        session = self.make_session(catalog, database)
        session.execute_batch(example1_batch())
        drift_b(database)
        session.execute_batch(example1_batch())
        reoptimized = session.execute_batch(example1_batch())
        plain = Executor(database).execute_result(reoptimized.result.plan)
        assert reoptimized.rows == plain

    def test_post_drift_warm_traffic_is_stable_again(self, catalog, database):
        """After the one-off correction the session settles: no repeated
        drift events, warm results bit-identical again."""
        session = self.make_session(catalog, database)
        session.execute_batch(example1_batch())
        drift_b(database)
        session.execute_batch(example1_batch())
        first = session.execute_batch(example1_batch())
        events = session.statistics.drift_events
        again = session.execute_batch(example1_batch())
        assert again.rows == first.rows
        assert again.materializations == 0
        assert session.statistics.drift_events == events
        assert session.statistics.reoptimizations == 1

    def test_adaptive_true_uses_default_config(self, catalog, database):
        session = OptimizerSession(catalog, database=database, adaptive=True)
        assert session.adaptive_config == AdaptiveConfig()
        assert session.feedback is not None

    def test_benefit_policy_is_wired_by_default(self, catalog):
        session = OptimizerSession(catalog, adaptive=True)
        assert isinstance(session.matcache.policy, BenefitAwarePolicy)
        assert session.matcache.policy.store is session.feedback

    def test_explicit_matcache_wins_over_benefit_policy(self, catalog):
        cache = MaterializationCache()
        session = OptimizerSession(catalog, adaptive=True, matcache=cache)
        assert session.matcache is cache
        assert isinstance(cache.policy, CostLRUPolicy)

    def test_feedback_survives_reset(self, catalog, database):
        session = self.make_session(catalog, database)
        session.execute_batch(example1_batch())
        observed = len(session.feedback)
        assert observed > 0
        session.reset()
        assert len(session.feedback) == observed, (
            "fingerprint-keyed observations outlive the memo"
        )


class TestRecordOnSuccessOnly:
    """Regression: a failing query inside an instrumented batch must not
    corrupt the statistics store with partial measurements."""

    def make_broken_database(self):
        database = example1_database(large_rows=LARGE, small_rows=SMALL)
        c_rows = database.tables.pop("c")  # plans over c now fail at runtime
        return database, c_rows

    def mixed_batch(self):
        good = qb.scan("a").query("GOOD")
        bad = (
            qb.scan("b")
            .join(qb.scan("c"), eq(col("b_join"), col("c_key")))
            .query("BAD")
        )
        return QueryBatch("mixed", (good, bad))

    def test_operator_error_leaves_the_stats_store_untouched(self, catalog):
        database, _ = self.make_broken_database()
        session = OptimizerSession(
            catalog,
            database=database,
            adaptive=AdaptiveConfig(drift_threshold=THRESHOLD),
        )
        with pytest.raises(KeyError, match="unknown table 'c'"):
            session.execute_batch(self.mixed_batch())
        assert len(session.feedback) == 0, (
            "the successful GOOD query ran before the failure, but its "
            "buffered observation must be discarded with the batch"
        )
        assert session.statistics.observations_recorded == 0
        assert session.statistics.drift_events == 0

    def test_repaired_batch_records_normally(self, catalog):
        database, c_rows = self.make_broken_database()
        session = OptimizerSession(
            catalog,
            database=database,
            adaptive=AdaptiveConfig(drift_threshold=THRESHOLD),
        )
        with pytest.raises(KeyError):
            session.execute_batch(self.mixed_batch())
        database.add_table("c", c_rows)
        execution = session.execute_batch(self.mixed_batch())
        assert set(execution.rows) == {"GOOD", "BAD"}
        assert session.statistics.observations_recorded > 0
        assert len(session.feedback) > 0


class TestObservationHygiene:
    def test_warm_cache_reads_do_not_erode_measured_recompute_time(
        self, catalog, database
    ):
        """A materialized query root is re-read (READ_MATERIALIZED) by its
        query plans; those near-zero cache-read timings must not average
        into the fingerprint's measured recomputation time."""
        shared = (
            qb.scan("a")
            .join(qb.scan("b"), eq(col("a_join"), col("b_key")))
            .join(qb.scan("c"), eq(col("b_join"), col("c_key")))
        )
        batch = QueryBatch("twins", (shared.query("Q1"), shared.query("Q2")))
        session = OptimizerSession(
            catalog,
            database=database,
            adaptive=AdaptiveConfig(drift_threshold=1000.0),  # isolate timing
        )
        cold = session.execute_batch(batch)
        from repro.optimizer.plan import PhysicalOp

        root_plan = cold.result.plan.query_plans["Q1"]
        assert root_plan.op is PhysicalOp.READ_MATERIALIZED, (
            "the twin queries' shared root should be materialized and re-read"
        )
        from repro.dag.fingerprint import canonical_key

        key = canonical_key(session.memo.signature_of(root_plan.group))
        after_cold = session.feedback.get(key)
        assert after_cold.elapsed > 0.0, "the materialization itself was timed"

        warm = session.execute_batch(batch)
        assert warm.materializations == 0
        after_warm = session.feedback.get(key)
        assert after_warm.observations > after_cold.observations
        assert after_warm.elapsed == after_cold.elapsed, (
            "cache-read observations must leave the elapsed EWMA untouched"
        )

    def test_observations_from_a_stale_data_version_are_discarded(
        self, catalog, database
    ):
        """Mirror of the matcache's stale-fill rejection: measurements taken
        against data that changed mid-execution must not be absorbed (and
        must not rebind the store to the old token)."""
        session = OptimizerSession(
            catalog,
            database=database,
            adaptive=AdaptiveConfig(drift_threshold=3.0),
        )
        result = session.optimize(example1_batch())
        # Simulate the race: the data changes after optimization chose the
        # token but before execution's observations are absorbed.
        original_execute = Executor.execute_result

        def racing_execute(self, *args, **kwargs):
            rows = original_execute(self, *args, **kwargs)
            # The data moves on while rows are in flight.  The mutation must
            # be real: the token is the database's *content* fingerprint, so
            # a bare touch() that changes nothing (correctly) changes no
            # token either.
            database.table("a")[0]["a_payload"] = "mutated-mid-flight"
            database.touch()
            return rows

        try:
            Executor.execute_result = racing_execute
            session.execute_plans(result)
        finally:
            Executor.execute_result = original_execute
        assert session.statistics.observations_recorded == 0
        assert len(session.feedback) == 0
        assert session.statistics.drift_events == 0


class TestExecutorObserverContract:
    def test_observer_sees_every_executed_plan_but_not_cache_hits(
        self, catalog, database
    ):
        session = OptimizerSession(catalog, database=database)
        result = session.optimize(example1_batch())
        executor = Executor(database)

        seen = []
        rows = executor.execute_result(
            result.plan, observer=lambda plan, out, took: seen.append((plan, out, took))
        )
        expected = len(result.plan.materialization_plans) + len(result.plan.query_plans)
        assert len(seen) == expected
        assert all(took >= 0.0 for _, _, took in seen)

        # Pre-supplied materializations are not executed, hence not observed.
        store = {
            gid: executor.execute(plan)
            for gid, plan in result.plan.materialization_plans.items()
        }
        seen.clear()
        executor.execute_result(
            result.plan,
            materialized=store,
            observer=lambda plan, out, took: seen.append(plan),
        )
        assert len(seen) == len(result.plan.query_plans)
        assert rows == executor.execute_result(result.plan)
