"""The common protocol every materialization-selection strategy implements.

A *strategy* answers one question: given the combined DAG of a batch and a
``bestCost`` engine over it, which equivalence nodes (with which stored sort
orders) should be materialized?  Everything around that decision — building
the DAG, evaluating the final plan, falling back to the no-sharing plan when
the selection does not pay off, assembling the :class:`~repro.core.mqo.MQOResult`
— is shared runner logic in :func:`repro.core.mqo.run_strategy`.

Strategies are classes registered under a unique name with
:func:`~repro.core.strategies.registry.register_strategy`; third-party
strategies plug in the same way without touching core code::

    from repro.core.strategies import Strategy, StrategyContext, register_strategy

    @register_strategy
    class TopKByRows(Strategy):
        name = "top-k-rows"

        def select(self, context: StrategyContext):
            nodes = context.dag.shareable_nodes()
            ranked = sorted(nodes, key=lambda g: -context.dag.memo.get(g).rows)
            return ranked[: context.cardinality or 3]
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Iterable, Optional, Tuple

from ...dag.sharing import BatchDag
from ...optimizer.best_cost import BestCostEngine

__all__ = ["Strategy", "StrategyContext", "ordered_selection"]


@dataclass(frozen=True)
class StrategyContext:
    """Everything a strategy may consult when picking nodes to materialize.

    Attributes:
        dag: the combined AND-OR DAG of the batch.
        engine: the ``bestCost`` oracle over the DAG (caching, incremental).
        lazy: prefer the lazy (heap-accelerated) greedy variants.
        cardinality: optional upper bound on how many nodes to materialize.
        decomposition: which MQO decomposition MarginalGreedy runs on
            (``"use-cost"`` or ``"canonical"``).
    """

    dag: BatchDag
    engine: BestCostEngine
    lazy: bool = True
    cardinality: Optional[int] = None
    decomposition: str = "use-cost"


class Strategy(ABC):
    """A materialization-selection strategy.

    Subclasses set :attr:`name` (the registry key, also shown in results)
    and implement :meth:`select`.  Instances must be stateless with respect
    to the batch — the same instance may be used for many batches, possibly
    from several threads of the serving layer.
    """

    #: Unique registry name, e.g. ``"marginal-greedy"``.
    name: ClassVar[str] = ""

    @abstractmethod
    def select(self, context: StrategyContext) -> Iterable:
        """Return the materialization candidates chosen for this batch.

        Elements may be bare group ids or
        :class:`~repro.dag.sharing.MaterializationChoice` objects; the runner
        normalizes and orders them before the final cost evaluation.
        """

    def describe(self) -> str:
        return self.name or type(self).__name__


def ordered_selection(elements: Iterable) -> Tuple:
    """Deterministic ordering of a selection (by group id, then sort order)."""
    return tuple(
        sorted(
            elements,
            key=lambda e: (getattr(e, "group", e), str(getattr(e, "order", ""))),
        )
    )
