"""Report serialization: one harness run → machine-readable JSON + CSV.

The JSON document is the full nested report (one entry per setting, the
:meth:`~.controller.SettingReport.as_dict` shape under a versioned
envelope); the CSV is the same data flattened one row per setting, so a
matrix run drops straight into a spreadsheet or pandas without any
unpacking.  :func:`validate_report` is the schema gate the smoke tests
and CI artifacts are checked against — if the envelope or a per-setting
section ever loses a field, the tier-1 suite fails before a dashboard
silently goes blank.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from .controller import SettingReport

__all__ = [
    "REPORT_FORMAT",
    "build_report",
    "flatten_setting",
    "validate_report",
    "write_csv",
    "write_json",
]

#: Bump when the report envelope changes shape.
REPORT_FORMAT = 1

#: Config knobs worth a CSV column of their own (the rest stay in JSON).
_CSV_CONFIG_KEYS = (
    "workload",
    "scale",
    "shards",
    "executor",
    "arrival",
    "tenants",
    "zipf",
    "requests",
    "adaptive",
    "seed",
)

#: Per-series latency stats exported to CSV.
_CSV_LATENCY_STATS = ("p50", "p95", "p99", "mean", "count")


def build_report(settings: Sequence[SettingReport]) -> Dict[str, object]:
    """The versioned envelope around a list of setting reports."""
    return {
        "format": REPORT_FORMAT,
        "kind": "harness",
        "settings": [s.as_dict() for s in settings],
    }


def write_json(
    settings: Sequence[SettingReport], path: Union[str, Path]
) -> Dict[str, object]:
    report = build_report(settings)
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def flatten_setting(setting: Mapping[str, object]) -> Dict[str, object]:
    """One CSV row from one ``SettingReport.as_dict()`` mapping."""
    row: Dict[str, object] = {"label": setting["label"]}
    config = setting["config"]
    for key in _CSV_CONFIG_KEYS:
        row[key] = config.get(key)
    for key in ("requests", "completed", "wall_seconds", "throughput_rps"):
        row[key] = setting[key]
    for series, stats in sorted(setting["latency"].items()):
        for stat in _CSV_LATENCY_STATS:
            row[f"latency_{series}_{stat}"] = stats.get(stat)
    for group, counters in sorted(setting["counters"].items()):
        for name in sorted(counters):
            row[f"{group}_{name}"] = counters[name]
    oracle = setting["oracle"]
    row["oracle_checked"] = oracle.get("checked", 0)
    row["oracle_mismatches"] = oracle.get("mismatches", 0)
    row["drift_steps_applied"] = setting["drift_steps_applied"]
    row["shard_batches_served"] = "|".join(
        str(v) for v in setting["shard_batches_served"]
    )
    row["sampled_rows_digest"] = setting["sampled_rows_digest"]
    return row


def write_csv(settings: Sequence[SettingReport], path: Union[str, Path]) -> List[str]:
    """One row per setting; returns the header actually written.

    The header is the union of every row's keys in first-seen order, so a
    matrix mixing spill and non-spill settings still writes one rectangular
    file (the counter groups are schema-stable, so in practice every row
    has every column).
    """
    rows = [flatten_setting(s.as_dict()) for s in settings]
    header: List[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    with Path(path).open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=header)
        writer.writeheader()
        writer.writerows(rows)
    return header


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------

_SETTING_REQUIRED = (
    "label",
    "config",
    "requests",
    "completed",
    "wall_seconds",
    "throughput_rps",
    "latency",
    "counters",
    "shard_batches_served",
    "oracle",
    "drift_steps_applied",
    "sampled_rows_digest",
)
_COUNTER_GROUPS = ("session", "cache", "feedback")
_ORACLE_REQUIRED = ("backends", "checked", "mismatches", "mismatch_details")
_LATENCY_REQUIRED = ("count", "mean", "p50", "p95", "p99")


def validate_report(report: Mapping[str, object]) -> Mapping[str, object]:
    """Raise ``ValueError`` on any schema violation; return the report."""
    if report.get("format") != REPORT_FORMAT:
        raise ValueError(
            f"unsupported report format {report.get('format')!r}; "
            f"expected {REPORT_FORMAT}"
        )
    if report.get("kind") != "harness":
        raise ValueError(f"not a harness report: kind={report.get('kind')!r}")
    settings = report.get("settings")
    if not isinstance(settings, list) or not settings:
        raise ValueError("report must carry a non-empty settings list")
    for position, setting in enumerate(settings):
        where = f"settings[{position}]"
        for key in _SETTING_REQUIRED:
            if key not in setting:
                raise ValueError(f"{where} is missing {key!r}")
        if not isinstance(setting["throughput_rps"], (int, float)):
            raise ValueError(f"{where}.throughput_rps must be numeric")
        latency = setting["latency"]
        if "request" not in latency:
            raise ValueError(f"{where}.latency must include the request series")
        for series, stats in latency.items():
            for stat in _LATENCY_REQUIRED:
                if stat not in stats:
                    raise ValueError(f"{where}.latency[{series!r}] lacks {stat!r}")
        counters = setting["counters"]
        for group in _COUNTER_GROUPS:
            if group not in counters or not isinstance(counters[group], Mapping):
                raise ValueError(f"{where}.counters must carry the {group!r} group")
        oracle = setting["oracle"]
        for key in _ORACLE_REQUIRED:
            if key not in oracle:
                raise ValueError(f"{where}.oracle is missing {key!r}")
        if not isinstance(setting["shard_batches_served"], list):
            raise ValueError(f"{where}.shard_batches_served must be a list")
    return report
