"""Example 1 / Figure 1 of the paper, reproduced on the synthetic A,B,C,D catalog.

The paper's introductory example: two queries ``A ⋈ B ⋈ C`` and
``B ⋈ C ⋈ D`` whose locally optimal plans share nothing, but materializing
``B ⋈ C`` once and reading it from both queries gives a cheaper
consolidated plan (460 vs 370 cost units in the paper's illustrative
numbers).  Our cost model is the TPCD resource-consumption model rather
than the paper's unit costs, so the absolute values differ, but the
qualitative conclusion — the shared plan beats the locally optimal plans,
and the node picked is ``B ⋈ C`` — is what this module checks and reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.mqo import MQOResult, MultiQueryOptimizer
from ..workloads.synthetic import example1_batch, example1_catalog
from .reporting import ResultTable

__all__ = ["Example1Outcome", "run_example1"]


@dataclass(frozen=True)
class Example1Outcome:
    """Costs of the no-sharing plan vs the consolidated shared plan."""

    volcano_cost: float
    shared_cost: float
    materialized_labels: Tuple[str, ...]
    results: Dict[str, MQOResult]

    @property
    def sharing_wins(self) -> bool:
        return self.shared_cost < self.volcano_cost

    @property
    def shares_b_join_c(self) -> bool:
        """Whether the algorithm chose to materialize the ``B ⋈ C`` subexpression."""
        return any("b ⋈ c" in label.lower() for label in self.materialized_labels)

    def table(self) -> ResultTable:
        table = ResultTable(
            "Example 1 (Figure 1) — sharing B ⋈ C between A⋈B⋈C and B⋈C⋈D",
            ["plan", "estimated cost (ms)"],
        )
        table.add_row("locally optimal plans (no sharing)", self.volcano_cost)
        table.add_row("consolidated plan with sharing", self.shared_cost)
        table.notes = "Materialized: " + (", ".join(self.materialized_labels) or "(nothing)")
        return table


def run_example1(
    large_rows: int = 2_000_000, small_rows: int = 10_000, strategy: str = "greedy"
) -> Example1Outcome:
    """Optimize the Example-1 batch and report both plan costs."""
    catalog = example1_catalog(large_rows=large_rows, small_rows=small_rows)
    batch = example1_batch()
    optimizer = MultiQueryOptimizer(catalog)
    results = optimizer.compare(batch, strategies=("volcano", strategy))
    shared = results[strategy]
    return Example1Outcome(
        volcano_cost=results["volcano"].total_cost,
        shared_cost=shared.total_cost,
        materialized_labels=shared.materialized_labels,
        results=results,
    )
