"""Sharded-serving benchmark: a 4-shard SessionPool vs. one OptimizerSession.

The serving acceptance bar for the sharded layer: under concurrent mixed
traffic (distinct random star-join batches submitted by a 4-worker
scheduler, each executed twice so warm passes count too), a
``SessionPool(shards=4)`` must serve strictly more batches per second than
a single ``OptimizerSession`` — while returning **bit-identical rows** for
every batch.

The single session is slow for a structural reason, not a tuning one:
every distinct batch interns into its one memo, whose subsumption pass
compares new groups against everything earlier traffic left behind, and
every optimization serializes behind its one coarse lock.  Sharding by
fingerprint splits both — each shard's memo only ever sees its own slice
of the traffic, and micro-batches on different shards never contend.

Besides the assertions, the module writes ``BENCH_pool.json`` at the
repository root recording both drive times, throughputs, the per-shard
distribution and the serving-latency percentiles (p50/p95/p99 per
strategy and shard, straight from the observability registry's
histograms), for CI to upload as an artifact.
"""

import json
import time
from pathlib import Path

import pytest

from repro.service import BatchScheduler, OptimizerSession, SessionPool
from repro.workloads.synthetic import (
    random_star_batch,
    star_schema_catalog,
    star_schema_database,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pool.json"

N_DIMENSIONS = 4
N_BATCHES = 7
SHARDS = 4
WORKERS = 4
REPEATS = 2  # second pass re-submits everything: warm traffic counts too


@pytest.fixture(scope="module")
def catalog():
    return star_schema_catalog(n_dimensions=N_DIMENSIONS)


@pytest.fixture(scope="module")
def database():
    return star_schema_database(seed=9, n_dimensions=N_DIMENSIONS)


@pytest.fixture(scope="module")
def traffic():
    return [
        random_star_batch(2, seed=seed, n_dimensions=N_DIMENSIONS)
        for seed in range(N_BATCHES)
    ]


def drive(serving, traffic):
    """Submit the traffic through a scheduler with WORKERS workers, twice.

    Returns (wall seconds, rows per batch name) — the rows let the caller
    assert the sharded and single-session runs computed identical results.
    """
    rows = {}
    started = time.perf_counter()
    with BatchScheduler(serving, workers=WORKERS, strategy="greedy") as scheduler:
        for _ in range(REPEATS):
            futures = [
                (batch.name, scheduler.submit_batch(batch, execute=True))
                for batch in traffic
            ]
            for name, future in futures:
                rows[name] = future.result(timeout=600).rows
    return time.perf_counter() - started, rows


LATENCY_SERIES = (
    "session_optimize_seconds",
    "session_execute_seconds",
    "scheduler_queue_wait_seconds",
)


def latency_percentiles(serving):
    """p50/p95/p99 (seconds) of every labeled latency series serving kept."""
    out = {}
    for name in LATENCY_SERIES:
        for labels, snapshot in sorted(
            serving.obs.registry.histogram_snapshots(name).items()
        ):
            key = name
            if labels:
                key += "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            out[key] = {
                "p50": snapshot.p50,
                "p95": snapshot.p95,
                "p99": snapshot.p99,
                "count": snapshot.count,
            }
    return out


def test_pool_outserves_single_session_with_identical_rows(
    catalog, database, traffic
):
    """The acceptance criterion, asserted directly; writes BENCH_pool.json.

    The pool drive is the fast side, so it runs twice (a fresh pool each
    time, best-of-2) to keep a scheduling hiccup on a noisy CI runner from
    inverting the comparison; noise on the (slow) single-session side only
    widens the margin, so one drive suffices there.
    """
    pool_times = []
    for _ in range(2):
        pool = SessionPool(catalog, shards=SHARDS, database=database)
        elapsed, pool_rows = drive(pool, traffic)
        pool_times.append(elapsed)
    pool_time = min(pool_times)

    single = OptimizerSession(catalog, database=database)
    single_time, single_rows = drive(single, traffic)

    assert pool_rows == single_rows, "sharding must never change computed rows"
    assert pool_time < single_time, (
        f"4-shard pool ({pool_time:.2f}s) must out-serve the single session "
        f"({single_time:.2f}s) under {WORKERS}-worker mixed traffic"
    )

    batches_served = REPEATS * len(traffic)
    shard_load = [s.batches_served for s in pool.shard_statistics()]
    assert sum(shard_load) == batches_served
    assert sum(1 for load in shard_load if load) >= 2, "traffic should spread"

    BENCH_JSON.write_text(
        json.dumps(
            {
                "unit": "seconds",
                "workers": WORKERS,
                "shards": SHARDS,
                "distinct_batches": len(traffic),
                "batches_served": batches_served,
                "single_session_time": single_time,
                "pool_time": pool_time,
                "single_session_batches_per_s": batches_served / single_time,
                "pool_batches_per_s": batches_served / pool_time,
                "speedup": single_time / pool_time,
                "shard_batches_served": shard_load,
                "rows_identical": True,
                "latency_percentiles": {
                    "pool": latency_percentiles(pool),
                    "single_session": latency_percentiles(single),
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
