"""The crash/restart differential harness for the durable cache tier.

The acceptance bar of the issue, asserted directly: run a mixed star batch
workload through a spilling :class:`~repro.service.pool.SessionPool`, tear
the pool down, rebuild it **from the spill directory alone** (the database
is regenerated from scratch, as a restarted process would), and warm
re-execution must yield

* bit-identical rows for every query,
* bit-identical chosen plan costs, and
* **zero re-materializations** — every materialized node is served from
  the recovered disk tier,

parametrized over 1/2/4 shards.  A separate case proves the same through
eviction-driven spills alone (a *crash*, no checkpoint, with a RAM budget
far below the working set), and the feedback half proves a restarted
adaptive pool is re-seeded with everything the previous process learned.
"""

import pytest

from repro.adaptive.stats import FeedbackStatsStore, SnapshotError
from repro.service import BatchScheduler, OptimizerSession, SessionPool
from repro.storage import SpillConfig
from repro.workloads.synthetic import (
    random_star_batch,
    star_schema_catalog,
    star_schema_database,
)

N_DIMENSIONS = 4
SEEDS = (1, 2, 5)
#: Selective joins (only 1/KEY_FANOUT of the fact rows match a dimension)
#: make shared fact⋈dim subexpressions profitable to materialize, so the
#: workload actually exercises the spill tier (5 materialized nodes,
#: ~23 KB, largest ~11 KB — a 12 KB RAM budget forces evictions).
KEY_FANOUT = 4
FACT_ROWS = 600


@pytest.fixture(scope="module")
def star_catalog():
    return star_schema_catalog(n_dimensions=N_DIMENSIONS, key_fanout=KEY_FANOUT)


def fresh_database():
    """Regenerated per 'process': restart durability must not depend on the
    database *object* surviving — only on its content being the same."""
    return star_schema_database(
        seed=9, n_dimensions=N_DIMENSIONS, key_fanout=KEY_FANOUT, fact_rows=FACT_ROWS
    )


def traffic():
    return [
        random_star_batch(3, seed=seed, n_dimensions=N_DIMENSIONS) for seed in SEEDS
    ]


def run_workload(pool):
    """Execute the mixed workload; returns (rows, costs, rematerializations)."""
    rows, costs, rematerialized = {}, {}, 0
    for batch in traffic():
        execution = pool.execute_batch(batch, strategy="greedy")
        rows[batch.name] = execution.rows
        costs[batch.name] = (
            execution.result.total_cost,
            dict(execution.result.query_costs),
        )
        rematerialized += execution.materializations
    return rows, costs, rematerialized


class TestRestartDifferential:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_rebuilt_pool_serves_bit_identical_rows_with_zero_rematerializations(
        self, star_catalog, tmp_path, shards
    ):
        spill_dir = tmp_path / "spill"

        pool = SessionPool(
            star_catalog, shards=shards, database=fresh_database(), spill_dir=spill_dir
        )
        cold_rows, cold_costs, cold_materialized = run_workload(pool)
        assert cold_materialized >= 1, "workload must exercise materialization"
        pool.snapshot()  # planned shutdown: checkpoint hot entries + feedback
        del pool

        reborn = SessionPool(
            star_catalog, shards=shards, database=fresh_database(), spill_dir=spill_dir
        )
        assert reborn.matcache_statistics().recovered >= cold_materialized
        warm_rows, warm_costs, warm_materialized = run_workload(reborn)

        assert warm_rows == cold_rows, "restart must not change a single row"
        assert warm_costs == cold_costs, "restart must not change plan costs"
        assert warm_materialized == 0, (
            "a rebuilt pool must serve every materialization from the disk tier"
        )
        stats = reborn.matcache_statistics()
        assert stats.faults >= cold_materialized
        assert stats.stale_files_dropped == 0 and stats.corrupt_files_dropped == 0

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_restart_differential_against_a_never_restarted_session(
        self, star_catalog, tmp_path, shards
    ):
        """Differential against an independent reference: the restarted pool
        must agree with a plain never-restarted single session, not merely
        with its own previous life."""
        single = OptimizerSession(star_catalog, database=fresh_database())
        reference = {
            batch.name: single.execute_batch(batch, strategy="greedy").rows
            for batch in traffic()
        }

        spill_dir = tmp_path / "spill"
        pool = SessionPool(
            star_catalog, shards=shards, database=fresh_database(), spill_dir=spill_dir
        )
        run_workload(pool)
        pool.snapshot()
        del pool
        reborn = SessionPool(
            star_catalog, shards=shards, database=fresh_database(), spill_dir=spill_dir
        )
        warm_rows, _, warm_materialized = run_workload(reborn)
        assert warm_rows == reference
        assert warm_materialized == 0

    def test_crash_without_snapshot_is_correct_and_partially_warm(
        self, star_catalog, tmp_path
    ):
        """No checkpoint (a crash): whatever eviction spilled is recovered;
        everything else is recomputed — correctness never depends on the
        snapshot having happened."""
        spill_dir = tmp_path / "spill"
        # A RAM budget far below the working set forces eviction-driven
        # spills while the workload runs (it still fits the largest single
        # entry, so no fill is rejected outright).
        config = SpillConfig(max_bytes=12 * 1024, max_entries=3)
        pool = SessionPool(
            star_catalog,
            shards=2,
            database=fresh_database(),
            spill_dir=spill_dir,
            spill_config=config,
        )
        cold_rows, cold_costs, cold_materialized = run_workload(pool)
        spilled = pool.matcache_statistics().spills
        assert cold_materialized >= 1
        assert spilled >= 1, "the tight RAM budget must force eviction spills"
        del pool  # crash: no snapshot()

        reborn = SessionPool(
            star_catalog,
            shards=2,
            database=fresh_database(),
            spill_dir=spill_dir,
            spill_config=config,
        )
        assert 1 <= reborn.matcache_statistics().recovered <= spilled
        warm_rows, warm_costs, _ = run_workload(reborn)
        assert warm_rows == cold_rows
        assert warm_costs == cold_costs

    def test_scheduler_shutdown_checkpoints_for_the_next_process(
        self, star_catalog, tmp_path
    ):
        """Closing a BatchScheduler over a spilling pool is a planned
        shutdown: the next process starts warm without anyone having called
        snapshot() explicitly."""
        spill_dir = tmp_path / "spill"
        pool = SessionPool(
            star_catalog, shards=2, database=fresh_database(), spill_dir=spill_dir
        )
        with BatchScheduler(pool, strategy="greedy") as scheduler:
            futures = [
                scheduler.submit_batch(batch, execute=True) for batch in traffic()
            ]
            cold = {f.result(timeout=600).batch_name: f.result().rows for f in futures}
        del pool

        reborn = SessionPool(
            star_catalog, shards=2, database=fresh_database(), spill_dir=spill_dir
        )
        warm_rows, _, warm_materialized = run_workload(reborn)
        assert warm_materialized == 0
        for name, rows in warm_rows.items():
            assert rows == cold[name]

    def test_restart_into_different_data_recomputes_everything(
        self, star_catalog, tmp_path
    ):
        """The negative control: same spill dir, *different* data — every
        recovered file is stale and the pool must recompute, not serve the
        old rows."""
        spill_dir = tmp_path / "spill"
        pool = SessionPool(
            star_catalog, shards=2, database=fresh_database(), spill_dir=spill_dir
        )
        _, _, cold_materialized = run_workload(pool)
        assert cold_materialized >= 1
        pool.snapshot()
        del pool

        def changed_database():
            return star_schema_database(
                seed=10,
                n_dimensions=N_DIMENSIONS,
                key_fanout=KEY_FANOUT,
                fact_rows=FACT_ROWS,
            )

        reborn = SessionPool(
            star_catalog, shards=2, database=changed_database(), spill_dir=spill_dir
        )
        single = OptimizerSession(star_catalog, database=changed_database())
        for batch in traffic():
            warm = reborn.execute_batch(batch, strategy="greedy")
            reference = single.execute_batch(batch, strategy="greedy")
            assert warm.rows == reference.rows
        stats = reborn.matcache_statistics()
        assert stats.faults == 0, "no stale file may ever be served"
        assert stats.stale_files_dropped >= 1


class TestFeedbackRestart:
    def test_restarted_adaptive_pool_is_reseeded_with_learned_statistics(
        self, star_catalog, tmp_path
    ):
        spill_dir = tmp_path / "spill"
        pool = SessionPool(
            star_catalog,
            shards=2,
            database=fresh_database(),
            spill_dir=spill_dir,
            adaptive=True,
        )
        run_workload(pool)
        learned = {key: pool.feedback.get(key) for key in pool.feedback.keys()}
        assert learned, "the workload must record observations"
        pool.snapshot()
        del pool

        reborn = SessionPool(
            star_catalog,
            shards=2,
            database=fresh_database(),
            spill_dir=spill_dir,
            adaptive=True,
        )
        assert set(reborn.feedback.keys()) == set(learned)
        for key, entry in learned.items():
            restored = reborn.feedback.get(key)
            assert restored.rows == entry.rows
            assert restored.bytes == entry.bytes
            assert restored.elapsed == entry.elapsed
            assert restored.observations == entry.observations
            # Same data ⇒ same token ⇒ nothing decays on reattachment.
            assert reborn.feedback.confidence(key) == pytest.approx(
                pool_confidence(entry, reborn.feedback)
            )
        assert reborn.feedback.token == reborn.sessions[0].matcache.token

    def test_restore_into_changed_data_decays_confidence(self, tmp_path):
        store = FeedbackStatsStore()
        store.ensure_token("data-v1")
        store.record("node-a", rows=100.0, bytes=800.0, elapsed=0.25)
        full_confidence = store.confidence("node-a")
        path = tmp_path / "feedback.json"
        store.snapshot(path)

        reborn = FeedbackStatsStore()
        reborn.restore(path)
        assert reborn.token == "data-v1"  # adopted from the snapshot
        # The restarted process discovers the data moved on: epoch bumps,
        # the restored observation decays into a prior instead of vanishing.
        assert reborn.ensure_token("data-v2")
        assert 0.0 < reborn.confidence("node-a") < full_confidence
        assert reborn.get("node-a").rows == 100.0

    def test_restore_into_a_store_bound_to_other_data_lags_entries(self, tmp_path):
        store = FeedbackStatsStore()
        store.ensure_token("data-v1")
        store.record("node-a", rows=10.0)
        path = tmp_path / "feedback.json"
        store.snapshot(path)

        other = FeedbackStatsStore()
        other.ensure_token("data-v2")
        other.record("node-b", rows=5.0)
        restored = other.restore(path)
        assert restored == 1
        assert other.confidence("node-a") < other.confidence("node-b")

    def test_live_entries_beat_snapshotted_ones(self, tmp_path):
        store = FeedbackStatsStore()
        store.ensure_token("tok")
        store.record("node-a", rows=10.0)
        path = tmp_path / "feedback.json"
        store.snapshot(path)

        live = FeedbackStatsStore()
        live.ensure_token("tok")
        live.record("node-a", rows=99.0)
        assert live.restore(path) == 0
        assert live.get("node-a").rows == 99.0

    def test_corrupt_snapshot_raises_snapshot_error(self, tmp_path):
        path = tmp_path / "feedback.json"
        for payload in (b"", b"not json", b'{"kind": "something-else"}', b'[1,2,3]'):
            path.write_bytes(payload)
            with pytest.raises(SnapshotError):
                FeedbackStatsStore().restore(path)

    def test_corrupt_snapshot_degrades_pool_to_cold_start(
        self, star_catalog, tmp_path
    ):
        spill_dir = tmp_path / "spill"
        spill_dir.mkdir()
        (spill_dir / "feedback.json").write_text("{truncated", encoding="utf-8")
        pool = SessionPool(
            star_catalog,
            shards=2,
            database=fresh_database(),
            spill_dir=spill_dir,
            adaptive=True,
        )
        assert len(pool.feedback) == 0  # empty store, not a crash
        rows, _, _ = run_workload(pool)
        assert rows  # fully serviceable

    def test_restore_under_capacity_pressure_evicts_snapshot_entries_first(
        self, tmp_path
    ):
        """Regression: restored priors land at the LRU end, so when the
        merged store exceeds ``max_entries`` it is the snapshot's entries
        that go — never a measurement this process actually took."""
        store = FeedbackStatsStore()
        store.ensure_token("tok")
        for index in range(4):
            store.record(f"snap-{index}", rows=float(index))
        path = tmp_path / "feedback.json"
        store.snapshot(path)

        live = FeedbackStatsStore(max_entries=4)
        live.ensure_token("tok")
        live.record("live-a", rows=1.0)
        live.record("live-b", rows=2.0)
        live.restore(path)
        assert len(live) == 4
        assert live.get("live-a") is not None and live.get("live-b") is not None
        # The two surviving snapshot entries are the snapshot's own newest.
        assert live.get("snap-3") is not None and live.get("snap-2") is not None

    def test_snapshot_round_trips_epoch_lag(self, tmp_path):
        """An entry that was already one epoch stale when snapshotted must
        come back exactly one epoch stale."""
        store = FeedbackStatsStore()
        store.ensure_token("v1")
        store.record("old-node", rows=7.0)
        store.ensure_token("v2")  # old-node now lags by 1
        store.record("new-node", rows=3.0)
        path = tmp_path / "feedback.json"
        store.snapshot(path)

        reborn = FeedbackStatsStore()
        reborn.restore(path)
        assert reborn.confidence("old-node") == store.confidence("old-node")
        assert reborn.confidence("new-node") == store.confidence("new-node")


def pool_confidence(entry, store):
    """The confidence the restored store reports for a same-epoch entry."""
    return 1.0 - (1.0 - store.ewma_alpha) ** entry.observations
