"""In-memory execution engine used to validate shared plans end to end."""

from .data import Database, Row, example1_database, tiny_tpcd_database
from .evaluate import ColumnNotFound, evaluate_predicate, resolve_column
from .executor import ExecutionError, Executor

__all__ = [
    "Database",
    "Row",
    "example1_database",
    "tiny_tpcd_database",
    "ColumnNotFound",
    "evaluate_predicate",
    "resolve_column",
    "ExecutionError",
    "Executor",
]
