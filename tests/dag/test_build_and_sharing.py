"""Tests for DAG expansion, subsumption and the sharing analysis."""

import pytest

from repro.algebra import builder as qb
from repro.algebra.expressions import col, eq, ge, lt
from repro.algebra.logical import QueryBatch
from repro.catalog.tpcd import tpcd_catalog
from repro.dag.build import DagBuilder, DagConfig
from repro.dag.fingerprint import RelationSignature, SPJSignature
from repro.dag.memo import JoinMExpr, SelectMExpr
from repro.dag.sharing import MaterializationChoice, build_batch_dag


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(0.1)


def two_way(name, cutoff):
    return (
        qb.scan("orders")
        .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
        .filter(lt(col("o_orderdate"), cutoff))
        .query(name)
    )


def three_way(name, cutoff):
    return (
        qb.scan("customer")
        .join(qb.scan("orders"), eq(col("c_custkey"), col("o_custkey")))
        .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
        .filter(lt(col("o_orderdate"), cutoff))
        .query(name)
    )


class TestExpansion:
    def test_all_connected_subsets_created(self, catalog):
        builder = DagBuilder(catalog)
        builder.add_query(three_way("Q", 19950101))
        spj_groups = [g for g in builder.memo if isinstance(g.signature, SPJSignature)]
        source_sets = {frozenset(a for a, _ in g.signature.sources) for g in spj_groups}
        # customer–orders–lineitem is a chain, so {customer, lineitem} is not connected.
        assert frozenset({"customer", "orders"}) in source_sets
        assert frozenset({"lineitem", "orders"}) in source_sets
        assert frozenset({"customer", "lineitem", "orders"}) in source_sets
        assert frozenset({"customer", "lineitem"}) not in source_sets

    def test_join_groups_have_multiple_alternatives(self, catalog):
        builder = DagBuilder(catalog)
        root = builder.add_query(three_way("Q", 19950101))
        root_group = builder.memo.get(root)
        joins = [m for m in root_group.mexprs if isinstance(m, JoinMExpr)]
        assert len(joins) >= 2  # both join orders of the chain

    def test_cardinalities_are_positive_and_monotone(self, catalog):
        builder = DagBuilder(catalog)
        builder.add_query(three_way("Q", 19950101))
        for group in builder.memo:
            assert group.rows >= 1
            assert group.row_width >= 1

    def test_rejects_too_many_sources(self, catalog):
        config = DagConfig(max_block_sources=2)
        builder = DagBuilder(catalog, config)
        with pytest.raises(ValueError):
            builder.add_query(three_way("Q", 19950101))

    def test_duplicate_query_names_rejected(self, catalog):
        builder = DagBuilder(catalog)
        builder.add_query(two_way("Q", 19950101))
        with pytest.raises(ValueError):
            builder.add_query(two_way("Q", 19960101))


class TestSubsumption:
    def test_relaxed_groups_created_for_different_constants(self, catalog):
        batch = QueryBatch("b", (two_way("A", 19940101), two_way("B", 19960101)))
        dag = build_batch_dag(batch, catalog)
        descriptions = [g.signature.describe() for g in dag.memo]
        assert any("OR" in d for d in descriptions), "expected a relaxed OR-predicate group"

    def test_subsumption_can_be_disabled(self, catalog):
        batch = QueryBatch("b", (two_way("A", 19940101), two_way("B", 19960101)))
        with_sub = build_batch_dag(batch, catalog, DagConfig(enable_subsumption=True))
        without = build_batch_dag(batch, catalog, DagConfig(enable_subsumption=False))
        assert with_sub.memo.mexpr_count() > without.memo.mexpr_count()

    def test_subset_predicates_derive_directly(self, catalog):
        unfiltered = (
            qb.scan("orders")
            .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
            .query("plain")
        )
        batch = QueryBatch("b", (two_way("A", 19940101), unfiltered))
        dag = build_batch_dag(batch, catalog)
        filtered_root = dag.memo.get(dag.query_roots["A"])
        plain_root_id = dag.query_roots["plain"]
        assert any(
            isinstance(m, SelectMExpr) and m.child == plain_root_id
            for m in filtered_root.mexprs
        ), "the stricter query should gain a σ-derivation over the unfiltered one"


class TestSharing:
    def test_identical_queries_share_root(self, catalog):
        batch = QueryBatch("b", (two_way("A", 19950101), two_way("B", 19950101)))
        dag = build_batch_dag(batch, catalog)
        assert dag.query_roots["A"] == dag.query_roots["B"]
        assert dag.query_roots["A"] in dag.shareable_nodes()

    def test_base_relations_never_shareable(self, catalog):
        batch = QueryBatch("b", (two_way("A", 19950101), two_way("B", 19950101)))
        dag = build_batch_dag(batch, catalog)
        for gid in dag.shareable_nodes():
            assert not isinstance(dag.memo.get(gid).signature, RelationSignature)

    def test_single_query_without_derived_blocks_has_no_shareable_nodes(self, catalog):
        batch = QueryBatch("b", (three_way("A", 19950101),))
        dag = build_batch_dag(batch, catalog)
        assert dag.shareable_nodes() == ()

    def test_ancestors(self, catalog):
        batch = QueryBatch("b", (three_way("A", 19950101), three_way("B", 19960101)))
        dag = build_batch_dag(batch, catalog)
        for gid in dag.shareable_nodes():
            ancestors = dag.ancestors(gid)
            assert gid not in ancestors
            # Every shareable node is below at least one query root.
            assert ancestors & set(dag.roots) or gid in dag.roots

    def test_interesting_and_preferred_orders(self, catalog):
        batch = QueryBatch("b", (three_way("A", 19950101), three_way("B", 19960101)))
        dag = build_batch_dag(batch, catalog)
        interesting = dag.interesting_orders()
        preferred = dag.preferred_orders()
        assert set(interesting) == {g.id for g in dag.memo}
        assert set(preferred) == {g.id for g in dag.memo}
        # At least one group has a requested order (the join keys).
        assert any(orders for orders in interesting.values())

    def test_shareable_candidates_include_sorted_variants(self, catalog):
        batch = QueryBatch("b", (three_way("A", 19950101), three_way("B", 19960101)))
        dag = build_batch_dag(batch, catalog)
        candidates = dag.shareable_candidates()
        groups = {c.group for c in candidates}
        assert groups == set(dag.shareable_nodes())
        assert any(c.order for c in candidates)
        assert any(not c.order for c in candidates)

    def test_describe_candidate(self, catalog):
        batch = QueryBatch("b", (two_way("A", 19950101), two_way("B", 19950101)))
        dag = build_batch_dag(batch, catalog)
        gid = dag.shareable_nodes()[0]
        assert dag.describe_candidate(gid).startswith(f"G{gid}")
        sorted_candidate = next(
            (c for c in dag.shareable_candidates() if c.order), None
        )
        if sorted_candidate is not None:
            assert "sorted by" in dag.describe_candidate(sorted_candidate)

    def test_summary_keys(self, catalog):
        batch = QueryBatch("b", (two_way("A", 19950101),))
        dag = build_batch_dag(batch, catalog)
        summary = dag.summary()
        for key in ("groups", "mexprs", "queries", "blocks", "shareable"):
            assert key in summary
