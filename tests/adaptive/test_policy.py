"""Tests for the pluggable materialization-cache policies."""

import pytest

from repro.adaptive import BenefitAwarePolicy, CostLRUPolicy, FeedbackStatsStore
from repro.service.matcache import MaterializationCache, estimate_rows_bytes


def fill_rows(n, payload="x" * 40):
    return [{"id": i, "payload": payload} for i in range(n)]


KEY_A = ("spj(a)", "any")
KEY_B = ("spj(b)", "any")
KEY_C = ("spj(c)", "any")


class TestCostLRUPolicy:
    def test_score_matches_the_legacy_formula(self):
        policy = CostLRUPolicy()

        class Entry:
            cost, hits, bytes = 10.0, 3, 5

        assert policy.score(KEY_A, Entry, clock=99) == 10.0 * 4 / 5
        assert policy.admit(KEY_A, 123, 1.0)

    def test_default_cache_eviction_behaviour_is_unchanged(self):
        """Expensive-per-byte entries survive, exactly as before policies."""
        rows = fill_rows(4)
        size = estimate_rows_bytes(rows)
        cache = MaterializationCache(max_bytes=2 * size + size // 2)
        cache.put(KEY_A, rows, cost=100.0)
        cache.put(KEY_B, rows, cost=1.0)
        cache.put(KEY_C, rows, cost=50.0)  # evicts the cheapest: B
        assert KEY_A in cache and KEY_C in cache
        assert KEY_B not in cache
        assert cache.statistics.evictions == 1


class TestBenefitAwarePolicy:
    def test_measured_benefit_overrides_estimated_cost(self):
        """An entry with tiny *estimated* cost but large *measured*
        recomputation time outlives one the optimizer guessed expensive."""
        store = FeedbackStatsStore()
        store.record(KEY_A[0], rows=4, bytes=100, elapsed=5.0)   # measured slow
        store.record(KEY_B[0], rows=4, bytes=100, elapsed=0.001)  # measured fast
        rows = fill_rows(4)
        size = estimate_rows_bytes(rows)
        cache = MaterializationCache(
            max_bytes=2 * size + size // 2, policy=BenefitAwarePolicy(store)
        )
        cache.put(KEY_A, rows, cost=1.0)      # estimated cheap, measured slow
        cache.put(KEY_B, rows, cost=1000.0)   # estimated dear, measured fast
        cache.put(KEY_C, rows, cost=500.0)    # unmeasured: cost fallback
        assert KEY_A in cache, "measured 5s of recomputation must be kept"
        assert KEY_B not in cache, "measured 1ms of recomputation goes first"

    def test_unmeasured_entries_fall_back_to_cost_lru(self):
        store = FeedbackStatsStore()
        policy = BenefitAwarePolicy(store)

        class Entry:
            cost, hits, bytes, last_used = 10.0, 0, 5, 0

        assert policy.score(KEY_A, Entry, clock=0) == CostLRUPolicy().score(
            KEY_A, Entry, clock=0
        )

    def test_recency_decays_the_score(self):
        store = FeedbackStatsStore()
        store.record(KEY_A[0], rows=4, bytes=100, elapsed=1.0)
        policy = BenefitAwarePolicy(store, recency_half_life=4.0)

        class Entry:
            cost, hits, bytes, last_used = 0.0, 0, 100, 10

        fresh = policy.score(KEY_A, Entry, clock=10)
        stale = policy.score(KEY_A, Entry, clock=18)  # 8 ticks = 2 half-lives
        assert stale == pytest.approx(fresh / 4.0)

    def test_admission_floor_rejects_cheap_recomputations(self):
        store = FeedbackStatsStore()
        store.record(KEY_A[0], rows=4, bytes=100, elapsed=0.0005)
        store.record(KEY_B[0], rows=4, bytes=100, elapsed=2.0)
        cache = MaterializationCache(
            policy=BenefitAwarePolicy(store, min_benefit_seconds=0.01)
        )
        assert cache.put(KEY_A, fill_rows(4), cost=50.0) is False
        assert cache.statistics.policy_rejections == 1
        assert cache.put(KEY_B, fill_rows(4), cost=50.0) is True
        # Unmeasured keys are admitted: nothing proves they are cheap.
        assert cache.put(KEY_C, fill_rows(4), cost=50.0) is True

    @pytest.mark.parametrize("kwargs", [
        {"min_benefit_seconds": -1.0},
        {"recency_half_life": 0.0},
    ])
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            BenefitAwarePolicy(FeedbackStatsStore(), **kwargs)
