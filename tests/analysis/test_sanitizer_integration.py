"""End-to-end sanitizer run: a sharded serving target under load.

Builds the full concurrent stack — a 4-shard :class:`SessionPool` with
spilling caches and the shared feedback store, fronted by a
:class:`BatchScheduler` — under ``REPRO_SANITIZE=1``, hammers it from
several submitter threads, and then asserts the recorded dynamics:

* the cross-thread lock-acquisition-order graph is **acyclic** (no
  potential deadlock was latent in the run);
* the spilling cache's known I/O-inside-the-lock critical section was
  actually observed and attributed to the ``spillcache`` lock;
* statically, no lock-guarded attribute of the serving components is
  touched without its lock (the lint checker over the service/storage
  sources is the machine-checked form of that claim).
"""

import threading
from pathlib import Path

import pytest

from repro.analysis import lint_paths, sanitizer_state
from repro.service import BatchScheduler, SessionPool
from repro.storage.spill import SpillConfig
from repro.workloads.synthetic import (
    random_star_batch,
    star_schema_catalog,
    star_schema_database,
)

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
N_DIMENSIONS = 4
N_SUBMITTERS = 4


@pytest.fixture(autouse=True)
def sanitized(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitizer_state().reset()
    yield
    sanitizer_state().reset()


def test_sharded_pool_under_load_has_acyclic_lock_order(tmp_path):
    catalog = star_schema_catalog(n_dimensions=N_DIMENSIONS)
    database = star_schema_database(seed=11, n_dimensions=N_DIMENSIONS)
    pool = SessionPool(
        catalog,
        shards=4,
        database=database,
        adaptive=True,
        spill_dir=tmp_path,
        # A two-entry RAM tier so executions overflow into spill files —
        # the run must exercise the known I/O-under-lock critical section.
        # (Entry budget, not byte budget: an over-byte-budget put is
        # rejected outright and would never reach the spill path.)
        spill_config=SpillConfig(max_bytes=4 * 1024 * 1024, max_entries=2),
    )
    queries = [
        query
        for seed in range(8)
        for query in random_star_batch(3, seed=seed, n_dimensions=N_DIMENSIONS)
    ]
    barrier = threading.Barrier(N_SUBMITTERS)
    submitted = []
    errors = []

    with BatchScheduler(
        pool, max_batch_size=4, max_delay=0.05, workers=4, strategy="greedy"
    ) as scheduler:

        def submitter(chunk):
            try:
                barrier.wait(timeout=30)
                submitted.extend(
                    (q, scheduler.submit(q, execute=True)) for q in chunk
                )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        chunks = [queries[i::N_SUBMITTERS] for i in range(N_SUBMITTERS)]
        threads = [threading.Thread(target=submitter, args=(c,)) for c in chunks]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        outcomes = [future.result(timeout=300) for _, future in submitted]

    assert len(outcomes) == len(queries)
    assert all(outcome.rows is not None for outcome in outcomes)

    state = sanitizer_state()
    report = state.report()

    # The run must actually have exercised the sanitized stack.
    assert report["acquisitions"], "no sanitized lock was ever acquired"
    assert any(
        role.startswith("session") for role in report["acquisitions"]
    ), report["acquisitions"]
    assert "spillcache" in report["acquisitions"], report["acquisitions"]

    # The one assertion that matters: no deadlock is latent in the order.
    assert state.cycles() == [], (
        "lock-order cycle detected:\n"
        + "\n".join("->".join(cycle) for cycle in state.cycles())
        + "\nedges: "
        + str(report["edge_examples"])
    )

    # The spilling cache's documented smell was observed and attributed.
    io_kinds = {kind for (_, kind) in state.io_events()}
    assert "spill.write" in io_kinds, report["io_under_lock"]
    assert all(
        "spillcache" in held for (held, _) in state.io_events()
    ), report["io_under_lock"]


def test_serving_components_have_static_lock_discipline():
    """No guarded attribute of the serving stack is touched unlocked."""
    report = lint_paths(
        [
            SRC / "service",
            SRC / "storage",
            SRC / "adaptive" / "stats.py",
            SRC / "obs" / "metrics.py",
        ],
        select=["lock-discipline"],
    )
    assert report.findings == [], [
        f.location() + " " + f.message for f in report.findings
    ]
