"""Differential harness: the columnar backend is row-identical to the oracle.

The vectorized backend (:mod:`repro.execution.columnar`) is only allowed to
change *speed*, never *answers*: for every registered strategy, over random
star-join batches and TPC-D-style batches with genuinely profitable
sharing, cold and warm against the materialization cache, it must return
exactly the rows the tuple-at-a-time interpreter returns — and drive the
cache identically (same hit/miss/fill counters), because the serving layer
makes admission and eviction decisions from those counters.

Most assertions here are intentionally *stronger* than the multiset
(order-normalized) bar the issue sets: the executors agree on row order and
on dict key order too, so plain ``==`` is used where possible, with the
order-normalized comparison as the documented minimum in the parametrized
sweep.
"""

import pytest

from repro.algebra import builder as qb
from repro.algebra.expressions import col, eq, lt
from repro.algebra.logical import QueryBatch
from repro.catalog.tpcd import tpcd_catalog
from repro.execution import ColumnarExecutor, Executor, tiny_tpcd_database
from repro.service import OptimizerSession
from repro.workloads.synthetic import (
    random_star_batch,
    star_schema_catalog,
    star_schema_database,
)

ALL_STRATEGIES = ("volcano", "greedy", "marginal-greedy", "share-all", "exhaustive")


def compare_all(session, batch):
    """Every registered strategy; only exhaustive gets a cardinality bound."""
    results = session.compare(batch, strategies=ALL_STRATEGIES[:-1])
    results.update(session.compare(batch, strategies=("exhaustive",), cardinality=2))
    return results


def canonical(rows):
    """Order-independent (multiset) canonical form of a list of result rows."""
    return sorted(
        tuple(
            sorted(
                (k, round(v, 6) if isinstance(v, float) else v) for k, v in row.items()
            )
        )
        for row in rows
    )


@pytest.fixture(scope="module")
def star_catalog():
    return star_schema_catalog(n_dimensions=4)


@pytest.fixture(scope="module")
def star_db():
    return star_schema_database(seed=9, n_dimensions=4)


def tpcd_pair_batch():
    """Two overlapping orders⋈lineitem aggregates the greedies share."""

    def make(name, cutoff):
        return (
            qb.scan("orders")
            .join(qb.scan("lineitem"), eq(col("o_orderkey"), col("l_orderkey")))
            .filter(lt(col("o_orderdate"), cutoff))
            .aggregate(["o_orderdate"], [("sum", "l_extendedprice", "revenue")])
            .query(name)
        )

    return QueryBatch("pair", (make("A", 19960101), make("B", 19970101)))


class TestEveryStrategyRowIdentical:
    """Backend × strategy × workload, executed directly (no cache)."""

    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_random_star_batches(self, star_catalog, star_db, seed):
        batch = random_star_batch(4, seed=seed, n_dimensions=4)
        session = OptimizerSession(star_catalog)
        results = compare_all(session, batch)
        assert set(results) == set(ALL_STRATEGIES)
        some_rows = False
        for name, result in results.items():
            reference = Executor(star_db).execute_result(result.plan)
            vectorized = ColumnarExecutor(star_db).execute_result(result.plan)
            assert set(reference) == set(vectorized)
            for query_name in reference:
                some_rows = some_rows or bool(reference[query_name])
                # The documented bar is order-normalized equality …
                assert canonical(vectorized[query_name]) == canonical(
                    reference[query_name]
                ), f"strategy {name} diverges on {query_name} (seed {seed})"
                # … but the backends actually agree bit for bit.
                assert vectorized[query_name] == reference[query_name], (
                    f"strategy {name}: row/key order differs on {query_name}"
                )
        assert some_rows, "batch should return some rows"

    def test_tpcd_pair_with_profitable_sharing(self):
        catalog = tpcd_catalog(1.0)
        db = tiny_tpcd_database(seed=7, orders=200)
        session = OptimizerSession(catalog)
        results = compare_all(session, tpcd_pair_batch())
        assert any(r.materialized_count >= 1 for r in results.values()), (
            "the harness should cover at least one genuinely shared execution"
        )
        for name, result in results.items():
            reference = Executor(db).execute_result(result.plan)
            vectorized = ColumnarExecutor(db).execute_result(result.plan)
            for query_name in reference:
                assert vectorized[query_name] == reference[query_name], (
                    f"strategy {name} diverges on {query_name}"
                )


class TestColdAndWarmCacheParity:
    """Full serving-path parity: rows *and* cache counters, cold and warm.

    One session per backend replays identical traffic; after every batch the
    rows must match and the materialization caches must have recorded the
    same hits, misses and fills — a backend that probed or filled the cache
    differently would skew the serving layer's admission decisions.
    """

    @pytest.mark.parametrize("strategy", ["greedy", "share-all"])
    def test_star_traffic_cold_then_warm(self, star_catalog, star_db, strategy):
        sessions = {
            backend: OptimizerSession(star_catalog, executor=backend, database=star_db)
            for backend in ("row", "columnar")
        }
        for seed in (3, 3, 4):  # cold, warm repeat, overlapping batch
            batch = random_star_batch(3, seed=seed, n_dimensions=4)
            outputs = {}
            for backend, session in sessions.items():
                result = session.optimize(batch, strategy=strategy)
                outputs[backend] = session.execute_plans(result)
            row_run, col_run = outputs["row"], outputs["columnar"]
            assert col_run.rows == row_run.rows
            assert col_run.cache_hits == row_run.cache_hits
            assert col_run.materializations == row_run.materializations
        row_stats = sessions["row"].matcache.statistics.as_dict()
        col_stats = sessions["columnar"].matcache.statistics.as_dict()
        assert col_stats == row_stats

    def test_tpcd_traffic_cold_then_warm(self):
        catalog = tpcd_catalog(1.0)
        db = tiny_tpcd_database(seed=7, orders=150)
        sessions = {
            backend: OptimizerSession(catalog, executor=backend, database=db)
            for backend in ("row", "columnar")
        }
        for _ in range(2):  # identical traffic twice: cold fills, then hits
            outputs = {}
            for backend, session in sessions.items():
                result = session.optimize(tpcd_pair_batch(), strategy="greedy")
                outputs[backend] = session.execute_plans(result)
            assert outputs["columnar"].rows == outputs["row"].rows
            assert outputs["columnar"].cache_hits == outputs["row"].cache_hits
        row_stats = sessions["row"].matcache.statistics.as_dict()
        col_stats = sessions["columnar"].matcache.statistics.as_dict()
        assert col_stats == row_stats
        assert row_stats["hits"] > 0, "warm pass should have hit the cache"

    def test_warm_hits_served_as_batches_match_row_serving(self):
        """A columnar session's warm pass reads ColumnBatch cache values."""
        catalog = tpcd_catalog(1.0)
        db = tiny_tpcd_database(seed=7, orders=150)
        session = OptimizerSession(catalog, executor="columnar", database=db)
        cold = session.execute_plans(session.optimize(tpcd_pair_batch(), strategy="greedy"))
        warm = session.execute_plans(session.optimize(tpcd_pair_batch(), strategy="greedy"))
        assert warm.rows == cold.rows
        assert warm.cache_hits >= 1, "warm pass must reuse materializations"


class TestForcedSharedExecution:
    """Shared execution parity independent of what the strategies choose."""

    @pytest.mark.parametrize("seed", [3, 4])
    def test_forced_materialization_sets(self, star_catalog, star_db, seed):
        batch = random_star_batch(3, seed=seed, n_dimensions=4)
        session = OptimizerSession(star_catalog)
        prepared = session.prepare(batch)
        dag, engine = prepared.dag, prepared.engine
        shareable = dag.shareable_nodes()
        assert shareable, "star batches must expose shareable nodes"
        for count in (1, min(3, len(shareable)), len(shareable)):
            forced = engine.evaluate(frozenset(shareable[:count]))
            reference = Executor(star_db).execute_result(forced)
            vectorized = ColumnarExecutor(star_db).execute_result(forced)
            for query_name in reference:
                assert vectorized[query_name] == reference[query_name], (
                    f"forced sharing of {count} nodes diverges on {query_name}"
                )

    def test_forced_sorted_variants(self, star_catalog, star_db):
        batch = random_star_batch(3, seed=6, n_dimensions=4)
        session = OptimizerSession(star_catalog)
        prepared = session.prepare(batch)
        dag, engine = prepared.dag, prepared.engine
        sorted_candidates = [c for c in dag.shareable_candidates() if c.order][:3]
        assert sorted_candidates, "expected sorted materialization candidates"
        forced = engine.evaluate(frozenset(sorted_candidates))
        reference = Executor(star_db).execute_result(forced)
        vectorized = ColumnarExecutor(star_db).execute_result(forced)
        for query_name in reference:
            assert vectorized[query_name] == reference[query_name]
