"""Repo-specific static analysis and runtime concurrency sanitizing.

Two halves, one package — both zero-dependency (stdlib only) and importable
from everywhere (this package imports :mod:`repro.obs` and nothing else from
``repro``, so service/storage code can adopt the sanitizer hooks without an
import cycle):

* :mod:`repro.analysis.lint` — an AST lint engine with checkers for the
  exact bug classes this codebase has shipped: the falsy-empty-container
  default (``matcache or ...``, PR 3; ``feedback or ...``, PR 4), unlocked
  access to lock-guarded shared state (the torn statistics read, PR 8),
  statistics aggregation that bypasses ``statistics_snapshot()``, and
  silently swallowed exceptions.  ``python -m repro.analysis src/`` runs it
  and exits nonzero on findings; per-line suppressions require a written
  reason (``# repro-lint: disable=<id> -- why``).
* :mod:`repro.analysis.sanitizer` — a runtime lock wrapper the serving and
  storage layers opt into under ``REPRO_SANITIZE=1``: it records the
  cross-thread lock-acquisition-order graph, detects cycles (potential
  deadlock) and I/O performed while holding a lock, and reports through the
  existing :class:`~repro.obs.MetricsRegistry`/trace machinery.
"""

from .lint import CHECKERS, Finding, LintReport, lint_paths, lint_source
from .sanitizer import (
    SanitizedLock,
    SanitizerState,
    record_io,
    sanitize_enabled,
    sanitize_lock,
    sanitizer_state,
)

__all__ = [
    "CHECKERS",
    "Finding",
    "LintReport",
    "SanitizedLock",
    "SanitizerState",
    "lint_paths",
    "lint_source",
    "record_io",
    "sanitize_enabled",
    "sanitize_lock",
    "sanitizer_state",
]
