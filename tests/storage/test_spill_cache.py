"""Unit tests for the two-level SpillingMaterializationCache.

The contract on top of the memory tier's: evictions spill, gets fault back
in, restarts recover, stale tokens and budgets are enforced on disk exactly
as in RAM — and a hit is *always* the rows most recently validly put,
whichever tier served it.
"""

import random
import threading

import pytest

from repro.dag.fingerprint import RelationSignature
from repro.service.matcache import MaterializationCache, cache_key, estimate_rows_bytes
from repro.storage import SpillConfig, SpillingMaterializationCache


def key(n: int):
    return cache_key(RelationSignature(f"table{n}", f"t{n}"))


def rows_for(n: int, variant: int = 0):
    return [
        {"t.k": n, "t.variant": variant, "t.payload": f"pâyløad-π-{n}-{variant}-{i}"}
        for i in range(1 + n % 5)
    ]


def make(tmp_path, **kwargs):
    kwargs.setdefault("max_entries", 2)
    return SpillingMaterializationCache(tmp_path / "spill", **kwargs)


class TestSpillAndFault:
    def test_eviction_spills_and_get_faults_back(self, tmp_path):
        cache = make(tmp_path)
        cache.ensure_token("tok")
        for n in range(4):
            assert cache.put(key(n), rows_for(n), cost=float(n), token="tok")
        assert len(cache) == 2
        assert cache.statistics.evictions == 2
        assert cache.statistics.spills == 2
        assert cache.disk_entries == 2
        # The evicted entries are served from disk, bit-identically.
        for n in range(4):
            assert cache.get(key(n)) == rows_for(n)
        assert cache.statistics.faults >= 2
        assert cache.statistics.misses == 0

    def test_fault_counts_as_hit_and_promotes(self, tmp_path):
        cache = make(tmp_path)
        cache.ensure_token("tok")
        for n in range(3):
            cache.put(key(n), rows_for(n), cost=float(n), token="tok")
        victim = next(n for n in range(3) if key(n) not in cache)
        before = cache.statistics.hits
        assert cache.get(key(victim)) == rows_for(victim)
        assert cache.statistics.hits == before + 1
        assert key(victim) in cache  # promoted into the hot tier

    def test_put_outdates_the_disk_copy(self, tmp_path):
        """A fresh fill for a key must delete the older spilled variant —
        otherwise a later failed re-spill could resurrect stale rows."""
        cache = make(tmp_path)
        cache.ensure_token("tok")
        for n in range(3):
            cache.put(key(n), rows_for(n), cost=float(n), token="tok")
        victim = next(n for n in range(3) if key(n) not in cache)
        assert key(victim) in cache.disk_keys()
        assert cache.put(key(victim), rows_for(victim, variant=7), cost=9.0, token="tok")
        assert key(victim) not in cache.disk_keys()
        assert cache.get(key(victim)) == rows_for(victim, variant=7)

    def test_reeviction_of_unchanged_entry_reuses_the_file(self, tmp_path):
        cache = make(tmp_path, max_entries=1)
        cache.ensure_token("tok")
        cache.put(key(1), rows_for(1), cost=5.0, token="tok")
        cache.put(key(2), rows_for(2), cost=5.0, token="tok")  # evicts+spills 1
        spills_after_first = cache.statistics.spills
        assert cache.get(key(1)) == rows_for(1)  # faults 1, evicts+spills 2
        assert cache.get(key(2)) == rows_for(2)  # faults 2, re-evicts 1
        # Re-evicting 1 (unchanged since its spill) must not rewrite the file.
        assert cache.statistics.spills <= spills_after_first + 1
        assert cache.get(key(1)) == rows_for(1)

    def test_oversized_entries_are_served_from_disk_without_promotion(self, tmp_path):
        big = [{"t.payload": "x" * 200}]
        size = estimate_rows_bytes(big)
        cache = make(tmp_path, max_entries=4, max_bytes=size)
        cache.ensure_token("tok")
        assert cache.put(key(1), big, token="tok")
        # Shrink the hot tier under the entry's size: it spills on the next
        # fill's eviction pass and can never be promoted back...
        cache.max_bytes = size - 1
        cache.put(key(2), [{"k": 1}], token="tok")
        assert key(1) not in cache
        assert cache.get(key(1)) == big  # ...but is still served from disk.
        assert key(1) not in cache


class TestTokens:
    def test_token_change_purges_both_tiers(self, tmp_path):
        cache = make(tmp_path)
        cache.ensure_token("tok1")
        for n in range(4):
            cache.put(key(n), rows_for(n), token="tok1")
        assert cache.disk_entries > 0
        assert cache.ensure_token("tok2")
        assert len(cache) == 0 and cache.disk_entries == 0
        assert list((tmp_path / "spill").glob("*.spill")) == []
        assert all(cache.get(key(n)) is None for n in range(4))

    def test_invalidate_reports_both_tiers(self, tmp_path):
        cache = make(tmp_path)
        cache.ensure_token("tok")
        for n in range(4):
            cache.put(key(n), rows_for(n), token="tok")
        assert cache.invalidate() == 4  # 2 hot + 2 spilled
        assert cache.current_bytes == 0 and cache.disk_bytes == 0


class TestRecovery:
    def test_restart_recovers_spilled_entries(self, tmp_path):
        cache = make(tmp_path)
        cache.ensure_token("tok")
        for n in range(4):
            cache.put(key(n), rows_for(n), cost=float(n), token="tok")
        cache.checkpoint()
        del cache

        reborn = make(tmp_path)
        assert reborn.statistics.recovered == 4
        reborn.ensure_token("tok")
        for n in range(4):
            assert reborn.get(key(n)) == rows_for(n)
        assert reborn.statistics.faults == 4
        assert reborn.statistics.misses == 0

    def test_get_before_token_binding_misses_without_destroying_files(self, tmp_path):
        """Regression: probing a recovered cache before ensure_token() must
        not judge the files stale — their validity is unknowable until the
        cache is bound, and deleting them would destroy exactly the durable
        state recovery exists to keep."""
        cache = make(tmp_path)
        cache.ensure_token("tok")
        for n in range(4):
            cache.put(key(n), rows_for(n), token="tok")
        cache.checkpoint()
        del cache

        reborn = make(tmp_path)
        assert reborn.statistics.recovered == 4
        assert reborn.get(key(0)) is None  # unbound: a miss, not a verdict
        assert reborn.statistics.stale_files_dropped == 0
        assert reborn.disk_entries == 4
        reborn.ensure_token("tok")
        assert reborn.get(key(0)) == rows_for(0)  # file survived to be served

    def test_restart_into_changed_data_drops_files_on_contact(self, tmp_path):
        cache = make(tmp_path)
        cache.ensure_token("old-data")
        for n in range(4):
            cache.put(key(n), rows_for(n), token="old-data")
        cache.checkpoint()
        del cache

        reborn = make(tmp_path)
        reborn.ensure_token("new-data")  # first token: adopted, no flush
        assert reborn.statistics.recovered == 4
        for n in range(4):
            assert reborn.get(key(n)) is None
        assert reborn.statistics.stale_files_dropped == 4
        assert reborn.disk_entries == 0
        assert list((tmp_path / "spill").glob("*.spill")) == []

    def test_checkpoint_then_restart_is_complete(self, tmp_path):
        """checkpoint() makes the disk a full copy: nothing hot is lost."""
        cache = make(tmp_path, max_entries=8)
        cache.ensure_token("tok")
        for n in range(5):
            cache.put(key(n), rows_for(n), token="tok")
        assert cache.disk_entries == 0  # nothing evicted yet
        written = cache.checkpoint()
        assert written == 5
        assert cache.checkpoint() == 0  # idempotent: files are current
        reborn = make(tmp_path, max_entries=8)
        reborn.ensure_token("tok")
        assert sorted(reborn.disk_keys()) == sorted(cache.keys())
        for n in range(5):
            assert reborn.get(key(n)) == rows_for(n)


class TestDiskBudget:
    def test_disk_entry_budget_evicts_oldest_files(self, tmp_path):
        cache = make(tmp_path, max_entries=1, max_disk_entries=2)
        cache.ensure_token("tok")
        for n in range(5):
            cache.put(key(n), rows_for(n), token="tok")
        assert cache.disk_entries <= 2
        assert cache.statistics.disk_evictions >= 1
        files = list((tmp_path / "spill").glob("*.spill"))
        assert len(files) == cache.disk_entries

    def test_disk_byte_budget(self, tmp_path):
        one_file_overhead = 512  # header + payload for these tiny rows
        cache = make(tmp_path, max_entries=1, max_disk_bytes=one_file_overhead)
        cache.ensure_token("tok")
        for n in range(6):
            cache.put(key(n), rows_for(n), token="tok")
        assert cache.disk_bytes <= one_file_overhead
        total = sum(p.stat().st_size for p in (tmp_path / "spill").glob("*.spill"))
        assert total == cache.disk_bytes

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            make(tmp_path, max_disk_bytes=0)
        with pytest.raises(ValueError):
            make(tmp_path, max_disk_entries=0)

    def test_from_config(self, tmp_path):
        config = SpillConfig(max_bytes=1024, max_entries=3, max_disk_bytes=4096, max_disk_entries=7)
        cache = SpillingMaterializationCache.from_config(tmp_path / "s", config)
        assert (cache.max_bytes, cache.max_entries) == (1024, 3)
        assert (cache.max_disk_bytes, cache.max_disk_entries) == (4096, 7)


class TestColumnarLayout:
    """The columnar spill layout behaves identically through the cache."""

    def test_columnar_spill_and_fault_round_trip(self, tmp_path):
        cache = make(tmp_path, layout="columnar")
        cache.ensure_token("tok")
        for n in range(4):
            assert cache.put(key(n), rows_for(n), cost=float(n), token="tok")
        assert cache.statistics.spills == 2
        for n in range(4):
            assert cache.get(key(n)) == rows_for(n)
        assert cache.statistics.faults >= 2
        assert cache.statistics.misses == 0

    def test_faulted_entry_serves_batches(self, tmp_path):
        cache = make(tmp_path, layout="columnar")
        cache.ensure_token("tok")
        for n in range(3):
            cache.put(key(n), rows_for(n), cost=float(n), token="tok")
        victim = next(n for n in range(3) if key(n) not in cache)
        batch = cache.get_batch(key(victim))
        assert batch is not None
        assert batch.to_rows() == rows_for(victim)

    @pytest.mark.parametrize(
        "first,second", [("rows", "columnar"), ("columnar", "rows")]
    )
    def test_restart_across_layouts(self, tmp_path, first, second):
        """A restarted cache decodes whatever layout the previous process
        wrote — the format is per-file, the layout only a write policy."""
        cache = make(tmp_path, layout=first)
        cache.ensure_token("tok")
        for n in range(4):
            cache.put(key(n), rows_for(n), cost=float(n), token="tok")
        cache.checkpoint()
        reborn = make(tmp_path, layout=second)
        reborn.ensure_token("tok")
        for n in range(4):
            assert reborn.get(key(n)) == rows_for(n)
        assert reborn.statistics.misses == 0

    def test_layout_validation(self, tmp_path):
        with pytest.raises(ValueError):
            make(tmp_path, layout="parquet")


class TestFuzzTwoLevel:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fuzz_against_reference_model(self, tmp_path, seed):
        """The memory-tier fuzz harness, re-run over the two-level cache: a
        hit (from either tier) must match the model exactly; token changes
        stale both tiers."""
        rng = random.Random(seed)
        cache = SpillingMaterializationCache(
            tmp_path / "spill", max_entries=4, max_bytes=2048
        )
        model = {}
        token = 0
        cache.ensure_token(token)
        for step in range(400):
            action = rng.random()
            n = rng.randrange(10)
            if action < 0.45:
                variant = rng.randrange(1000)
                if cache.put(key(n), rows_for(n, variant), cost=rng.uniform(0, 100), token=token):
                    model[key(n)] = rows_for(n, variant)
            elif action < 0.85:
                got = cache.get(key(n))
                if got is not None:
                    assert got == model[key(n)], f"stale/partial rows at step {step}"
            elif action < 0.95:
                token += 1
                cache.ensure_token(token)
                model.clear()
            else:
                if token > 0:
                    assert not cache.put(key(n), rows_for(n, -1), token=token - 1)
        # Disk files on disk always mirror the index.
        files = {p.name for p in (tmp_path / "spill").glob("*.spill")}
        assert len(files) == cache.disk_entries

    def test_threaded_two_level_hits_never_mix_keys(self, tmp_path):
        cache = SpillingMaterializationCache(
            tmp_path / "spill", max_entries=3, max_bytes=4096
        )
        errors = []

        def worker(worker_seed):
            rng = random.Random(worker_seed)
            try:
                for _ in range(150):
                    n = rng.randrange(8)
                    if rng.random() < 0.5:
                        cache.put(key(n), rows_for(n), cost=rng.uniform(0, 10))
                    else:
                        got = cache.get(key(n))
                        if got is not None and got != rows_for(n):
                            errors.append((n, got))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
