"""End-to-end tracing through the serving stack.

Covers the propagation story the observability layer promises: one trace
ID per request from scheduler submit through shard session, optimizer
phases, executor backend and cache events — across worker threads and a
4-shard pool — plus the behavioural guarantees (tracing changes no rows
and no counters; a warm batch traces zero fills; backends emit the same
span shape).
"""

from collections import Counter as TallyCounter

import pytest

from repro.catalog.tpcd import tpcd_catalog
from repro.execution import tiny_tpcd_database
from repro.obs import InMemorySink, Observability, Tracer
from repro.service import BatchScheduler, OptimizerSession, SessionPool
from repro.workloads.batches import composite_batch
from repro.workloads.tpcd_queries import batched_queries
from repro.workloads.synthetic import (
    random_star_batch,
    star_schema_catalog,
    star_schema_database,
)


@pytest.fixture(scope="module")
def catalog():
    return tpcd_catalog(0.05)


def traced_session(catalog, **kwargs):
    tracer = Tracer(InMemorySink())
    session = OptimizerSession(
        catalog, obs=Observability(tracer=tracer), **kwargs
    )
    return session, tracer


def events(records, name=None):
    out = []
    for record in records:
        for event in record.get("events", ()):
            if name is None or event["name"] == name:
                out.append((record["trace"], event))
    return out


def test_cold_then_warm_batch_traces(catalog):
    session, tracer = traced_session(catalog)
    session.attach_database(tiny_tpcd_database(seed=5, orders=80))
    cold = session.execute_batch(composite_batch(1))
    warm = session.execute_batch(composite_batch(1))
    assert warm.rows == cold.rows and warm.materializations == 0

    records = tracer.sink.records
    roots = [r for r in records if r["name"] == "session.execute_batch"]
    assert len(roots) == 2
    cold_trace, warm_trace = roots[0]["trace"], roots[1]["trace"]
    assert cold_trace != warm_trace

    by_trace = {}
    for record in records:
        by_trace.setdefault(record["trace"], []).append(record["name"])
    for trace in (cold_trace, warm_trace):
        names = set(by_trace[trace])
        assert {
            "session.execute_batch",
            "session.optimize",
            "session.execute",
            "execute.plan_node",
        } <= names
    # Only the cold trace interned and materialized anything.
    assert "optimize.intern" in by_trace[cold_trace]
    fills = events(records, "matcache.fill")
    assert fills and all(trace == cold_trace for trace, _ in fills)
    hits = events(records, "matcache.hit")
    assert any(trace == warm_trace for trace, _ in hits)
    # The warm optimize is a result-cache hit, flagged as an event.
    cache_hits = events(records, "session.result_cache_hit")
    assert [trace for trace, _ in cache_hits] == [warm_trace]


def test_tracing_changes_no_rows_and_no_counters(catalog):
    quiet = OptimizerSession(catalog)
    loud, tracer = traced_session(catalog)
    for session in (quiet, loud):
        session.attach_database(tiny_tpcd_database(seed=5, orders=80))
    for session in (quiet, loud):
        session.execute_batch(composite_batch(1))
        final = session.execute_batch(composite_batch(1))
        session.rows = final.rows
    assert loud.rows == quiet.rows
    assert loud.statistics.as_dict() == quiet.statistics.as_dict()
    assert loud.matcache.statistics.as_dict() == quiet.matcache.statistics.as_dict()
    assert tracer.sink.records, "the traced twin must actually have traced"


def test_scheduler_submissions_propagate_trace_ids_across_workers(catalog):
    session, tracer = traced_session(catalog)
    queries = batched_queries(1)  # Q3a, Q3b
    with BatchScheduler(
        session, max_batch_size=2, max_delay=0.2, strategy="greedy"
    ) as scheduler:
        futures = [scheduler.submit(query) for query in queries]
        for future in futures:
            future.result(timeout=120)

    records = tracer.sink.records
    micro = [r for r in records if r["name"] == "scheduler.micro_batch"]
    links = [r for r in records if r["name"] == "scheduler.query"]
    assert micro, "served micro-batches must be traced"
    # Every submission's trace is accounted for: as a micro-batch head or
    # as a companion link span pointing at the head it rode with.
    head_traces = {r["trace"] for r in micro}
    covered = set(head_traces)
    for link in links:
        assert link["attrs"]["rode_with"] in head_traces
        covered.add(link["trace"])
    assert len(covered) == len(queries)
    # Cross-thread propagation: the worker-side session spans file under
    # the submit-time trace, and the head span lists its companions.
    by_trace = {}
    for record in records:
        by_trace.setdefault(record["trace"], set()).add(record["name"])
    for trace in head_traces:
        assert "session.optimize" in by_trace[trace]
    for head in micro:
        assert head["attrs"]["queries"] >= 1
        member_traces = head["attrs"]["member_traces"]
        assert set(member_traces) == {r["trace"] for r in links if r["attrs"]["rode_with"] == head["trace"]}


def test_four_shard_pool_traces_per_submission_and_labels_shards():
    catalog = star_schema_catalog(n_dimensions=4)
    database = star_schema_database(seed=9, n_dimensions=4)
    tracer = Tracer(InMemorySink())
    pool = SessionPool(
        catalog,
        shards=4,
        database=database,
        obs=Observability(tracer=tracer),
    )
    traffic = [
        random_star_batch(2, seed=seed, n_dimensions=4) for seed in range(6)
    ]
    with BatchScheduler(pool, workers=4, strategy="greedy") as scheduler:
        futures = [
            scheduler.submit_batch(batch, execute=True) for batch in traffic
        ]
        for future in futures:
            future.result(timeout=120)

    by_trace = {}
    for record in tracer.sink.records:
        by_trace.setdefault(record["trace"], set()).add(record["name"])
    served = [
        names
        for names in by_trace.values()
        if "session.execute_batch" in names
    ]
    assert len(served) == len(traffic)  # one trace per submission
    for names in served:
        assert {"session.optimize", "session.execute"} <= names

    # The shared registry keeps per-shard latency series apart, and traffic
    # actually spread across shards.
    series = pool.obs.registry.histogram_snapshots("session_execute_seconds")
    shards_hit = {dict(labels)["shard"] for labels in series}
    assert len(shards_hit) >= 2
    assert sum(s.count for s in series.values()) == len(traffic)


@pytest.mark.parametrize("backend", ["row", "columnar", "sqlite"])
def test_backends_emit_the_same_span_shape(catalog, backend):
    """Span parity: the trace of a batch is backend-invariant (modulo the
    SQL engine's own table-load span)."""

    def shape(executor):
        session, tracer = traced_session(catalog, executor=executor)
        session.attach_database(tiny_tpcd_database(seed=5, orders=60))
        session.execute_batch(composite_batch(1))
        session.execute_batch(composite_batch(1))
        names = TallyCounter(
            r["name"]
            for r in tracer.sink.records
            if r["name"] != "sql.load_tables"
        )
        event_names = TallyCounter(
            event["name"] for _, event in events(tracer.sink.records)
        )
        return names, event_names

    assert shape(backend) == shape("row")
