"""The Greedy algorithm of Roy et al. (Algorithm 1) and its lazy variant.

Greedy works directly on the ``bestCost`` oracle: at every iteration it
adds the node whose materialization yields the largest reduction in
``bestCost(X ∪ {x})`` and stops as soon as no node reduces the cost.  The
"monotonicity heuristic" (supermodularity of ``bestCost``) makes the
benefits non-increasing over the iterations, which the LazyGreedy variant
exploits with a Minoux-style max-heap of stale benefit bounds — this is the
third optimization of Roy et al. recalled in Section 5.2 of the paper.

These implementations are written against an arbitrary
:class:`~repro.core.set_functions.SetFunction` ``best_cost`` so they can be
used both on the real MQO oracle (:mod:`repro.core.benefit`) and on
synthetic instances in tests.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .set_functions import Element, SetFunction, Subset

__all__ = ["GreedyCostStep", "GreedyResult", "greedy", "lazy_greedy"]


@dataclass(frozen=True)
class GreedyCostStep:
    """One Greedy iteration: the node picked and the resulting best cost."""

    element: Element
    benefit: float
    cost_after: float


@dataclass
class GreedyResult:
    """Outcome of a Greedy / LazyGreedy run.

    Attributes:
        selected: the chosen materialization set ``X``.
        order: elements in selection order.
        initial_cost: ``bestCost(∅)`` — the no-sharing (plain Volcano) cost.
        final_cost: ``bestCost(X)``.
        benefit: ``initial_cost − final_cost`` (the materialization benefit).
        steps: per-iteration trace.
        oracle_calls: number of ``bestCost`` evaluations performed.
        wall_time: wall-clock seconds spent inside the algorithm.
    """

    selected: Subset
    order: Tuple[Element, ...]
    initial_cost: float
    final_cost: float
    steps: Tuple[GreedyCostStep, ...]
    oracle_calls: int
    wall_time: float

    @property
    def benefit(self) -> float:
        return self.initial_cost - self.final_cost

    def __len__(self) -> int:
        return len(self.selected)


def greedy(
    best_cost: SetFunction,
    *,
    cardinality: Optional[int] = None,
    tolerance: float = 1e-9,
) -> GreedyResult:
    """Run the Greedy algorithm of Roy et al. on a ``bestCost`` oracle.

    Args:
        best_cost: a set function returning the best consolidated-plan cost
            given that the argument set of nodes is materialized.
        cardinality: optional limit on the number of materialized nodes.
        tolerance: minimum cost reduction regarded as an improvement.

    Returns:
        A :class:`GreedyResult` with the selected set and the run trace.
    """
    start = time.perf_counter()
    universe = best_cost.universe
    calls = 0

    selected: set = set()
    order: List[Element] = []
    steps: List[GreedyCostStep] = []

    current_cost = best_cost.value(frozenset())
    calls += 1
    initial_cost = current_cost
    candidates = set(universe)
    limit = len(universe) if cardinality is None else max(0, int(cardinality))

    while candidates and len(selected) < limit:
        best_element: Optional[Element] = None
        best_new_cost = math.inf
        for element in sorted(candidates, key=repr):
            new_cost = best_cost.value(frozenset(selected | {element}))
            calls += 1
            if new_cost < best_new_cost or (
                new_cost == best_new_cost and repr(element) < repr(best_element)
            ):
                best_element = element
                best_new_cost = new_cost
        if best_element is None or current_cost - best_new_cost <= tolerance:
            break
        selected.add(best_element)
        candidates.discard(best_element)
        order.append(best_element)
        steps.append(
            GreedyCostStep(
                element=best_element,
                benefit=current_cost - best_new_cost,
                cost_after=best_new_cost,
            )
        )
        current_cost = best_new_cost

    return GreedyResult(
        selected=frozenset(selected),
        order=tuple(order),
        initial_cost=initial_cost,
        final_cost=current_cost,
        steps=tuple(steps),
        oracle_calls=calls,
        wall_time=time.perf_counter() - start,
    )


def lazy_greedy(
    best_cost: SetFunction,
    *,
    cardinality: Optional[int] = None,
    tolerance: float = 1e-9,
) -> GreedyResult:
    """LazyGreedy: Greedy accelerated with stale benefit upper bounds.

    Valid under the monotonicity heuristic (supermodular ``bestCost``); when
    the assumption fails the output may differ from :func:`greedy`, which
    mirrors the behaviour discussed by Roy et al.
    """
    start = time.perf_counter()
    universe = best_cost.universe
    calls = 0

    selected: set = set()
    order: List[Element] = []
    steps: List[GreedyCostStep] = []

    current_cost = best_cost.value(frozenset())
    calls += 1
    initial_cost = current_cost
    limit = len(universe) if cardinality is None else max(0, int(cardinality))

    # Heap entries: (-benefit_bound, tie_breaker, element, iteration_computed).
    heap: List[Tuple[float, str, Element, int]] = []
    for element in universe:
        new_cost = best_cost.value(frozenset({element}))
        calls += 1
        heapq.heappush(heap, (-(current_cost - new_cost), repr(element), element, 0))

    iteration = 0
    while heap and len(selected) < limit:
        neg_benefit, tie, element, computed_at = heapq.heappop(heap)
        benefit = -neg_benefit
        if benefit <= tolerance:
            break
        if computed_at != iteration:
            new_cost = best_cost.value(frozenset(selected | {element}))
            calls += 1
            heapq.heappush(heap, (-(current_cost - new_cost), tie, element, iteration))
            continue
        new_cost = current_cost - benefit
        selected.add(element)
        order.append(element)
        iteration += 1
        steps.append(
            GreedyCostStep(element=element, benefit=benefit, cost_after=new_cost)
        )
        current_cost = new_cost

    return GreedyResult(
        selected=frozenset(selected),
        order=tuple(order),
        initial_cost=initial_cost,
        final_cost=current_cost,
        steps=tuple(steps),
        oracle_calls=calls,
        wall_time=time.perf_counter() - start,
    )
